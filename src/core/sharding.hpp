// Multi-device sharding: one frontend Machine striped over D independent
// backend Machines (core/sharding).
//
// The (M,B,omega)-AEM model prices a single asymmetric device.  Real NVM
// deployments aggregate an ARRAY of such devices, each with its own block
// size, write cost, and endurance budget; an algorithm sees one logical
// block space while every logical transfer lands on exactly one device.
// ShardedMachine models this as a Machine subclass: ExtArray, BlockCache,
// the sorts, permute, and SpMxV run UNMODIFIED on top of it, because the
// facade keeps the plain Machine contract (ledger, phases, trace, faults,
// cache, counters) bit-for-bit — and ADDITIONALLY routes every charged
// logical block I/O to a per-device Machine that charges it at device
// prices.  docs/MODEL.md section 13 is the formal contract.
//
// Two invariants make the aggregate trustworthy:
//
//  * Facade invariance: the frontend counters, trace, ledger, and metrics
//    are byte-identical to a plain Machine(frontend) run of the same
//    program, for every D and placement (at D=1 the whole snapshot is —
//    bench_m0_overhead holds the guard).  Placement can never change an
//    algorithm's measured Q; it changes where the cost LANDS.
//  * Device conservation: each logical block maps to exactly one device
//    (route() is a bijection logical -> (device, local)), and every logical
//    transfer becomes exactly frontend_B / device_B native transfers on
//    that device — no I/O is lost or double-charged across the array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/machine.hpp"
#include "core/stats.hpp"
#include "util/math.hpp"

namespace aem {

/// How logical blocks are assigned to devices.
enum class Placement : std::uint8_t {
  /// Block b -> device b mod D: adjacent blocks land on distinct devices,
  /// spreading both sequential scans and hot spots evenly (RAID-0 style).
  kRoundRobin,
  /// Chunked range striping: contiguous runs of `range_chunk_blocks`
  /// logical blocks stay on one device before moving to the next.  Keeps
  /// locality per device but concentrates hot prefixes (bench_s1_shard
  /// measures the wear-spread contrast).
  kRange,
};

const char* to_string(Placement p);

/// One device's planned outage window, in frontend op-clock units (the
/// frontend's charged reads + writes since construction or the last
/// reset_stats()).  The device is down for every logical transfer whose
/// frontend charge lands at clock in [down_at, up_at); up_at 0 means the
/// device never comes back.  While a device is down, reads against it wait
/// (bounded retries, exponential backoff charged as frontend poll reads)
/// and writes queue, draining at device prices once the window closes.
struct OutageSpec {
  std::size_t device = 0;
  std::uint64_t down_at = 0;  // 0 disables this entry
  std::uint64_t up_at = 0;    // 0 = never recovers
};

/// Degraded-serving counters of one device's outage handling (metrics
/// reliability section, schema v7).
struct OutageStats {
  std::uint64_t wait_rounds = 0;     // read retry rounds spent waiting
  std::uint64_t backoff_ios = 0;     // charged frontend poll reads
  std::uint64_t failed_reads = 0;    // reads that exhausted the retry budget
  std::uint64_t queued_writes = 0;   // native writes deferred while down
  std::uint64_t drained_writes = 0;  // deferred writes replayed on recovery
  friend bool operator==(const OutageStats&, const OutageStats&) = default;
};

/// Configuration for a ShardedMachine: the frontend (logical) machine the
/// algorithm sees, plus one Config per backend device.
struct ShardConfig {
  /// The logical machine: M, B, omega, ledger capacity, optional cache and
  /// faults — exactly what a plain Machine would be built from.
  Config frontend;

  /// One entry per device, in device-id order.  Each device may have its
  /// own block size (must divide frontend.block_elems), write cost, and
  /// fault/endurance schedule.  Device caches are rejected: caching lives
  /// ABOVE placement, on the frontend, so a hit never reaches any device.
  std::vector<Config> devices;

  Placement placement = Placement::kRoundRobin;

  /// Chunk length (in logical blocks) for Placement::kRange.
  std::size_t range_chunk_blocks = 64;

  /// Planned device outages (at most one window per device).  Empty (the
  /// default) keeps the serving path byte-identical to the pre-outage
  /// facade: the hot path pays one bool test per transfer.
  std::vector<OutageSpec> outages;

  /// Retry/backoff schedule for reads against a down device: retry k waits
  /// max(1, backoff(k)) charged frontend poll reads (the waiting itself
  /// advances the op clock, so a bounded wait can reach up_at — and trips
  /// a configured budget ceiling, turning BudgetExceeded into admission
  /// control).  Exhaustion throws FaultError.
  RetryPolicy outage_retry{/*max_retries=*/8, /*backoff_base=*/1,
                           /*backoff_cap=*/64};

  /// Throws std::invalid_argument on: no devices, an invalid frontend or
  /// device Config, a device block size that does not divide the frontend
  /// block size, a device cache, a zero range chunk, or a bad outage entry
  /// (unknown device, duplicate device, window that ends before it starts).
  void validate() const;
};

/// A Machine whose charged I/Os are additionally striped across D member
/// Machines.  The base-class state IS the frontend: all algorithm-facing
/// behaviour (ledger, phases, cache, faults, trace, Q) is inherited
/// unchanged; the overrides only append per-device accounting.
class ShardedMachine : public Machine {
 public:
  explicit ShardedMachine(ShardConfig cfg);

  // --- the device array --------------------------------------------------
  std::size_t device_count() const { return devices_.size(); }
  Machine& device(std::size_t d) { return *devices_.at(d); }
  const Machine& device(std::size_t d) const { return *devices_.at(d); }
  const ShardConfig& shard_config() const { return scfg_; }
  Placement placement() const { return scfg_.placement; }

  /// Native device transfers per logical block on device d
  /// (= frontend B / device B; write amplification for coarse frontends
  /// over fine devices).
  std::size_t amplification(std::size_t d) const { return amp_.at(d); }

  // --- routing (exposed for tests and diagnostics) ------------------------
  struct Route {
    std::size_t device = 0;       // which member machine
    std::uint64_t local = 0;      // logical block index ON that device
  };
  Route route(std::uint64_t block) const;

  // --- aggregates ---------------------------------------------------------
  /// Element-wise sum of the per-device IoStats (native transfer counts).
  IoStats devices_stats() const;
  /// Sum over devices of reads_d + omega_d * writes_d — the real money
  /// spent by the array, priced per device (saturating).
  std::uint64_t devices_cost() const;
  /// max/mean of per-device native write counts; 1.0 when the array has
  /// seen no writes.  1.0 = perfectly balanced, D = one device takes all.
  double wear_spread() const;
  /// Turns on the per-(array, block) write histogram on every device.
  void enable_device_wear_tracking();

  // --- degraded serving (outage schedule) ---------------------------------
  /// Frontend op clock the outage windows are evaluated against: charged
  /// frontend reads + writes so far (including backoff polls).
  std::uint64_t op_clock() const { return stats().total_ios(); }
  /// True while device d is inside its configured outage window.
  bool device_down(std::size_t d) const;
  const OutageStats& outage_stats(std::size_t d) const {
    return ostats_.at(d);
  }
  /// Native writes still queued for device d (deferred while it was down
  /// and not yet drained).
  std::size_t pending_writes(std::size_t d) const {
    return queued_.at(d).size();
  }
  /// Replays every queued write whose device has recovered, at device
  /// prices, in FIFO order.  Runs automatically before each logical
  /// transfer; public so callers can settle the array at a quiet point
  /// before reading aggregate counters.
  void drain_recovered();

  // --- Machine overrides --------------------------------------------------
  std::uint32_t register_array(std::string name) override;
  void reset_stats() override;
  IoTicket on_read(std::uint32_t array, std::uint64_t block) override;
  IoTicket on_write(std::uint32_t array, std::uint64_t block) override;
  /// Batched submission across the array: the frontend facade is charged as
  /// one bulk batch (identical counters/trace to the per-op path), then the
  /// ops are grouped by route() and each device receives its whole native
  /// batch in ONE member-machine submit — D calls instead of one per block.
  /// Per-device native order is preserved; only the interleaving BETWEEN
  /// devices differs from the per-op path (each device's counters are
  /// order-insensitive, so every aggregate stays byte-identical).  Armed
  /// outage windows and in-batch crash points degrade to the per-op loop.
  void submit(std::span<const BlockOp> ops,
              std::span<IoTicket> tickets) override;
  using Machine::submit;

 private:
  struct QueuedWrite {
    std::uint32_t array = 0;
    std::uint64_t native = 0;  // device-native block index
  };

  /// Bounded-retry wait for a down device (reads).  Each retry charges
  /// frontend poll reads; throws FaultError on exhaustion.
  void wait_for_device(std::size_t d, std::uint32_t array,
                       std::uint64_t block);

  ShardConfig scfg_;
  std::vector<std::unique_ptr<Machine>> devices_;
  std::vector<std::size_t> amp_;  // amp_[d] = frontend B / device d's B

  // route() runs once per charged logical transfer, so the two divisors it
  // needs (device count, range chunk length) are precomputed reciprocals —
  // a high multiply plus shifts instead of two hardware divides per block.
  util::FastDiv64 div_devices_;
  util::FastDiv64 div_chunk_;

  // Per-device native-op staging for submit(); members so a steady stream
  // of batches reuses the allocations.
  std::vector<std::vector<BlockOp>> batch_by_device_;

  // Outage state (all empty-schedule costs: one bool test per transfer).
  bool outages_armed_ = false;
  std::vector<std::uint64_t> down_at_;  // per device; 0 = no outage
  std::vector<std::uint64_t> up_at_;
  std::vector<std::vector<QueuedWrite>> queued_;
  std::vector<OutageStats> ostats_;
};

}  // namespace aem
