#include "core/ledger.hpp"

namespace aem {

CapacityError::CapacityError(std::size_t requested, std::size_t used,
                             std::size_t capacity)
    : std::runtime_error("internal memory capacity exceeded: requested " +
                         std::to_string(requested) + " elements with " +
                         std::to_string(used) + "/" + std::to_string(capacity) +
                         " already resident"),
      requested_(requested),
      used_(used),
      capacity_(capacity) {}

}  // namespace aem
