#include "core/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/machine.hpp"
#include "core/sharding.hpp"

namespace aem {

namespace {

// Doubles are rendered with enough digits to round-trip, but without the
// locale-dependence of operator<<.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* fmt_bool(bool b) { return b ? "true" : "false"; }

void write_io(std::ostream& os, const IoStats& io) {
  os << "{\"reads\":" << io.reads << ",\"writes\":" << io.writes << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

MetricsSnapshot snapshot_metrics(const Machine& mach, std::string label) {
  MetricsSnapshot s;
  s.label = std::move(label);

  const Config& cfg = mach.config();
  s.memory_elems = cfg.memory_elems;
  s.block_elems = cfg.block_elems;
  s.write_cost = cfg.write_cost;
  s.strict = cfg.strict;
  s.capacity_factor = cfg.capacity_factor;
  s.capacity = cfg.capacity();

  s.io = mach.stats();
  s.cost = mach.cost();

  const MemoryLedger& ledger = mach.ledger();
  s.ledger_used = ledger.used();
  s.ledger_high_water = ledger.high_water();
  s.ledger_poisoned = ledger.poisoned();
  s.ledger_over_released = ledger.over_released();

  for (std::uint32_t id = 0; id < mach.phase_count(); ++id) {
    const IoStats& io = mach.phase_io(id);
    if (io.reads == 0 && io.writes == 0) continue;
    s.phases.push_back(PhaseMetrics{mach.phase_name(id), io});
  }

  s.wear_enabled = mach.wear_tracking();
  if (s.wear_enabled) {
    const Machine::WearStats ws = mach.wear_stats();
    s.wear_blocks_written = ws.blocks_written;
    s.wear_max_writes = ws.max_writes;
    s.wear_mean_writes = ws.mean_writes;
    for (const Machine::ArrayWear& aw : mach.wear_by_array()) {
      ArrayWearMetrics m;
      m.array = aw.array;
      if (aw.array < mach.array_count()) m.name = mach.array_name(aw.array);
      m.blocks_written = aw.blocks_written;
      m.writes = aw.writes;
      m.max_writes = aw.max_writes;
      s.wear_arrays.push_back(std::move(m));
    }
  }

  if (const FaultPolicy* fp = mach.faults()) {
    s.faults_enabled = true;
    s.fault_config = fp->config();
    s.fault_stats = fp->stats();
    s.reliability.crash_after_writes = fp->config().crash_after_writes;
    s.reliability.crashes = fp->crashes_fired();
    s.reliability.retry_attempts = fp->retry_attempts();
    s.reliability.backoff_ios = fp->backoff_ios();
  }
  s.reliability.recovery = mach.recovery_stats();

  if (const BlockCache* bc = mach.cache()) {
    s.cache_enabled = true;
    s.cache_config = bc->config();
    s.cache_window = bc->window();
    s.cache_stats = bc->stats();
    s.cache_resident = bc->resident();
    s.cache_resident_dirty = bc->resident_dirty();
  }

  if (const auto* sm = dynamic_cast<const ShardedMachine*>(&mach)) {
    s.sharding.enabled = true;
    s.sharding.placement = to_string(sm->placement());
    s.sharding.chunk_blocks = sm->shard_config().range_chunk_blocks;
    s.sharding.total_io = sm->devices_stats();
    s.sharding.total_cost = sm->devices_cost();
    s.sharding.wear_spread = sm->wear_spread();
    for (std::size_t d = 0; d < sm->device_count(); ++d) {
      const Machine& dev = sm->device(d);
      ShardDeviceMetrics row;
      row.name = "dev" + std::to_string(d);
      row.memory_elems = dev.config().memory_elems;
      row.block_elems = dev.config().block_elems;
      row.write_cost = dev.config().write_cost;
      row.amplification = sm->amplification(d);
      row.io = dev.stats();
      row.cost = dev.cost();
      row.wear_enabled = dev.wear_tracking();
      if (row.wear_enabled) {
        const Machine::WearStats ws = dev.wear_stats();
        row.wear_blocks_written = ws.blocks_written;
        row.wear_max_writes = ws.max_writes;
        row.wear_mean_writes = ws.mean_writes;
      }
      s.sharding.devices.push_back(std::move(row));
    }
    for (const OutageSpec& o : sm->shard_config().outages) {
      if (o.down_at == 0) continue;  // disabled entry
      OutageMetrics om;
      om.name = "dev" + std::to_string(o.device);
      om.device = o.device;
      om.down_at = o.down_at;
      om.up_at = o.up_at;
      om.down_now = sm->device_down(o.device);
      const OutageStats& ost = sm->outage_stats(o.device);
      om.wait_rounds = ost.wait_rounds;
      om.backoff_ios = ost.backoff_ios;
      om.failed_reads = ost.failed_reads;
      om.queued_writes = ost.queued_writes;
      om.drained_writes = ost.drained_writes;
      om.pending_writes = sm->pending_writes(o.device);
      s.reliability.outages.push_back(std::move(om));
    }
  }

  s.reliability.enabled =
      s.reliability.crash_after_writes != 0 || s.reliability.crashes != 0 ||
      s.reliability.retry_attempts != 0 || s.reliability.backoff_ios != 0 ||
      s.reliability.recovery.scans != 0 || !s.reliability.outages.empty();

  s.trace_enabled = mach.tracing();
  if (const Trace* tr = mach.trace()) s.trace_ops = tr->size();

  s.arrays.reserve(mach.array_count());
  for (std::uint32_t id = 0; id < mach.array_count(); ++id)
    s.arrays.push_back(mach.array_name(id));

  return s;
}

void write_json(std::ostream& os, const MetricsSnapshot& s) {
  os << "{\"schema\":\"" << MetricsSnapshot::kSchema << "\"";
  os << ",\"label\":\"" << json_escape(s.label) << "\"";

  os << ",\"config\":{\"memory_elems\":" << s.memory_elems
     << ",\"block_elems\":" << s.block_elems
     << ",\"write_cost\":" << s.write_cost
     << ",\"strict\":" << fmt_bool(s.strict)
     << ",\"capacity_factor\":" << fmt_double(s.capacity_factor)
     << ",\"capacity\":" << s.capacity << "}";

  os << ",\"io\":{\"reads\":" << s.io.reads << ",\"writes\":" << s.io.writes
     << ",\"total\":" << s.io.total_ios() << ",\"cost\":" << s.cost << "}";

  os << ",\"ledger\":{\"used\":" << s.ledger_used
     << ",\"high_water\":" << s.ledger_high_water
     << ",\"poisoned\":" << fmt_bool(s.ledger_poisoned)
     << ",\"over_released\":" << s.ledger_over_released << "}";

  os << ",\"phases\":[";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(s.phases[i].name) << "\",\"io\":";
    write_io(os, s.phases[i].io);
    os << "}";
  }
  os << "]";

  os << ",\"wear\":{\"enabled\":" << fmt_bool(s.wear_enabled)
     << ",\"blocks_written\":" << s.wear_blocks_written
     << ",\"max_writes\":" << s.wear_max_writes
     << ",\"mean_writes\":" << fmt_double(s.wear_mean_writes)
     << ",\"arrays\":[";
  for (std::size_t i = 0; i < s.wear_arrays.size(); ++i) {
    const ArrayWearMetrics& m = s.wear_arrays[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(m.name) << "\",\"array\":" << m.array
       << ",\"blocks_written\":" << m.blocks_written
       << ",\"writes\":" << m.writes << ",\"max_writes\":" << m.max_writes
       << "}";
  }
  os << "]}";

  {
    const FaultConfig& fc = s.fault_config;
    const FaultStats& fs = s.fault_stats;
    os << ",\"faults\":{\"enabled\":" << fmt_bool(s.faults_enabled)
       << ",\"seed\":" << fc.seed
       << ",\"read_fault_rate\":" << fmt_double(fc.read_fault_rate)
       << ",\"silent_write_rate\":" << fmt_double(fc.silent_write_rate)
       << ",\"torn_write_rate\":" << fmt_double(fc.torn_write_rate)
       << ",\"endurance\":" << fc.endurance
       << ",\"spare_blocks\":" << fc.spare_blocks
       << ",\"max_retries\":" << fc.max_retries
       << ",\"verify_writes\":" << fmt_bool(fc.verify_writes)
       << ",\"checksum_reads\":" << fmt_bool(fc.checksum_reads)
       << ",\"max_cost\":" << fc.max_cost << ",\"max_ios\":" << fc.max_ios
       << ",\"injected\":{\"read\":" << fs.read_faults
       << ",\"silent_write\":" << fs.silent_write_faults
       << ",\"torn_write\":" << fs.torn_write_faults
       << ",\"retired_write\":" << fs.retired_writes << "}"
       << ",\"recovery\":{\"read_retries\":" << fs.read_retries
       << ",\"write_retries\":" << fs.write_retries
       << ",\"verify_failures\":" << fs.verify_failures
       << ",\"checksum_failures\":" << fs.checksum_failures
       << ",\"retired_blocks\":" << fs.retired_blocks
       << ",\"remaps\":" << fs.remaps << "}}";
  }

  {
    const CacheConfig& cc = s.cache_config;
    const CacheStats& cs = s.cache_stats;
    os << ",\"cache\":{\"enabled\":" << fmt_bool(s.cache_enabled)
       << ",\"policy\":\"" << to_string(cc.policy) << "\""
       << ",\"capacity_blocks\":" << cc.capacity_blocks
       << ",\"clean_window\":" << s.cache_window
       << ",\"read_hits\":" << cs.read_hits
       << ",\"read_misses\":" << cs.read_misses
       << ",\"write_hits\":" << cs.write_hits
       << ",\"write_misses\":" << cs.write_misses
       << ",\"evictions_clean\":" << cs.evictions_clean
       << ",\"evictions_dirty\":" << cs.evictions_dirty
       << ",\"write_backs\":" << cs.write_backs
       << ",\"flushes\":" << cs.flushes
       << ",\"invalidated_dirty\":" << cs.invalidated_dirty
       << ",\"resident\":" << s.cache_resident
       << ",\"resident_dirty\":" << s.cache_resident_dirty << "}";
  }

  {
    const ShardingMetrics& sh = s.sharding;
    os << ",\"sharding\":{\"enabled\":" << fmt_bool(sh.enabled)
       << ",\"placement\":\"" << json_escape(sh.placement) << "\""
       << ",\"devices\":" << sh.devices.size()
       << ",\"chunk_blocks\":" << sh.chunk_blocks
       << ",\"total\":{\"reads\":" << sh.total_io.reads
       << ",\"writes\":" << sh.total_io.writes
       << ",\"cost\":" << sh.total_cost << "}"
       << ",\"wear_spread\":" << fmt_double(sh.wear_spread)
       << ",\"per_device\":[";
    for (std::size_t i = 0; i < sh.devices.size(); ++i) {
      const ShardDeviceMetrics& d = sh.devices[i];
      if (i != 0) os << ",";
      os << "{\"name\":\"" << json_escape(d.name) << "\""
         << ",\"memory_elems\":" << d.memory_elems
         << ",\"block_elems\":" << d.block_elems
         << ",\"write_cost\":" << d.write_cost
         << ",\"amplification\":" << d.amplification
         << ",\"io\":{\"reads\":" << d.io.reads
         << ",\"writes\":" << d.io.writes << ",\"cost\":" << d.cost << "}"
         << ",\"wear\":{\"enabled\":" << fmt_bool(d.wear_enabled)
         << ",\"blocks_written\":" << d.wear_blocks_written
         << ",\"max_writes\":" << d.wear_max_writes
         << ",\"mean_writes\":" << fmt_double(d.wear_mean_writes) << "}}";
    }
    os << "]}";
  }

  {
    const StoreMetrics& st = s.store;
    os << ",\"store\":{\"enabled\":" << fmt_bool(st.enabled)
       << ",\"index\":\"" << json_escape(st.index) << "\""
       << ",\"records\":" << st.records
       << ",\"log_blocks\":" << st.log_blocks
       << ",\"payload_words\":" << st.payload_words
       << ",\"payload_blocks\":" << st.payload_blocks
       << ",\"index_bits\":" << st.index_bits
       << ",\"index_bits_per_page\":" << fmt_double(st.index_bits_per_page)
       << ",\"gets\":" << st.gets << ",\"get_hits\":" << st.get_hits
       << ",\"get_log_reads\":" << st.get_log_reads
       << ",\"get_payload_reads\":" << st.get_payload_reads
       << ",\"max_get_log_reads\":" << st.max_get_log_reads
       << ",\"scans\":" << st.scans
       << ",\"scan_records\":" << st.scan_records
       << ",\"puts\":" << st.puts << ",\"put_hits\":" << st.put_hits
       << ",\"put_log_reads\":" << st.put_log_reads
       << ",\"put_writes\":" << st.put_writes
       << ",\"orphaned_words\":" << st.orphaned_words
       << ",\"build\":{\"reads\":" << st.build_reads
       << ",\"writes\":" << st.build_writes
       << ",\"cost\":" << st.build_cost << "}}";
  }

  {
    const ReliabilityMetrics& r = s.reliability;
    os << ",\"reliability\":{\"enabled\":" << fmt_bool(r.enabled)
       << ",\"crash_after_writes\":" << r.crash_after_writes
       << ",\"crashes\":" << r.crashes
       << ",\"retry_attempts\":" << r.retry_attempts
       << ",\"backoff_ios\":" << r.backoff_ios
       << ",\"recovery\":{\"scans\":" << r.recovery.scans
       << ",\"reads\":" << r.recovery.reads
       << ",\"writes\":" << r.recovery.writes
       << ",\"cost\":" << r.recovery.cost << "}"
       << ",\"outages\":[";
    for (std::size_t i = 0; i < r.outages.size(); ++i) {
      const OutageMetrics& o = r.outages[i];
      if (i != 0) os << ",";
      os << "{\"name\":\"" << json_escape(o.name) << "\""
         << ",\"device\":" << o.device << ",\"down_at\":" << o.down_at
         << ",\"up_at\":" << o.up_at
         << ",\"down_now\":" << fmt_bool(o.down_now)
         << ",\"wait_rounds\":" << o.wait_rounds
         << ",\"backoff_ios\":" << o.backoff_ios
         << ",\"failed_reads\":" << o.failed_reads
         << ",\"queued_writes\":" << o.queued_writes
         << ",\"drained_writes\":" << o.drained_writes
         << ",\"pending_writes\":" << o.pending_writes << "}";
    }
    os << "]}";
  }

  {
    const TrafficMetrics& tm = s.traffic;
    os << ",\"traffic\":{\"enabled\":" << fmt_bool(tm.enabled)
       << ",\"dist\":\"" << json_escape(tm.dist) << "\""
       << ",\"generated\":" << tm.generated << ",\"served\":" << tm.served
       << ",\"rejected\":" << tm.rejected
       << ",\"rejection_rate\":" << fmt_double(tm.rejection_rate)
       << ",\"gets\":" << tm.gets << ",\"puts\":" << tm.puts
       << ",\"scans\":" << tm.scans
       << ",\"io\":{\"reads\":" << tm.reads << ",\"writes\":" << tm.writes
       << ",\"cost\":" << tm.cost << "}"
       << ",\"q\":{\"p50\":" << tm.q_p50 << ",\"p99\":" << tm.q_p99
       << ",\"p999\":" << tm.q_p999 << ",\"max\":" << tm.q_max
       << ",\"mean\":" << fmt_double(tm.q_mean) << "}"
       << ",\"imbalance\":" << fmt_double(tm.imbalance)
       << ",\"wear_horizon\":" << tm.wear_horizon
       << ",\"windows\":" << tm.windows << ",\"q_budget\":" << tm.q_budget
       << "}";
  }

  {
    const LowwriteMetrics& lw = s.lowwrite;
    os << ",\"lowwrite\":{\"enabled\":" << fmt_bool(lw.enabled)
       << ",\"family\":\"" << json_escape(lw.family) << "\""
       << ",\"variant\":\"" << json_escape(lw.variant) << "\""
       << ",\"n\":" << lw.n
       << ",\"io\":{\"reads\":" << lw.reads << ",\"writes\":" << lw.writes
       << ",\"cost\":" << lw.cost << "}"
       << ",\"baseline\":{\"reads\":" << lw.base_reads
       << ",\"writes\":" << lw.base_writes << ",\"cost\":" << lw.base_cost
       << "}"
       << ",\"wear_horizon\":" << lw.wear_horizon
       << ",\"baseline_wear_horizon\":" << lw.base_wear_horizon
       << ",\"absorbed_groups\":" << lw.absorbed_groups
       << ",\"q_winner\":\"" << json_escape(lw.q_winner) << "\""
       << ",\"writes_winner\":\"" << json_escape(lw.writes_winner) << "\""
       << "}";
  }

  os << ",\"trace\":{\"enabled\":" << fmt_bool(s.trace_enabled)
     << ",\"ops\":" << s.trace_ops << "}";

  os << ",\"arrays\":[";
  for (std::size_t i = 0; i < s.arrays.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(s.arrays[i]) << "\"";
  }
  os << "]}";
}

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  write_json(os, s);
  return os.str();
}

}  // namespace aem
