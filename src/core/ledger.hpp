// Internal-memory accounting.
//
// Every internal-memory residency in aemlib flows through a MemoryLedger:
// algorithms hold buffers only via RAII MemoryReservation objects, so the
// ledger's high-water mark is a sound upper bound on the number of elements
// an algorithm ever keeps in internal memory.  Tests run machines in strict
// mode, where exceeding the capacity throws, turning a memory-budget bug in
// an algorithm into a hard failure instead of a silently wrong cost claim.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace aem {

/// Thrown in strict mode when an acquisition would exceed the capacity M.
class CapacityError : public std::runtime_error {
 public:
  CapacityError(std::size_t requested, std::size_t used, std::size_t capacity);

  std::size_t requested() const { return requested_; }
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t requested_;
  std::size_t used_;
  std::size_t capacity_;
};

class MemoryLedger {
 public:
  MemoryLedger(std::size_t capacity_elems, bool strict)
      : capacity_(capacity_elems), strict_(strict) {}

  /// Registers `elems` additional resident elements.  In strict mode throws
  /// CapacityError if the capacity would be exceeded; otherwise the
  /// high-water mark still records the overshoot.
  void acquire(std::size_t elems) {
    if (strict_ && used_ + elems > capacity_)
      throw CapacityError(elems, used_, capacity_);
    used_ += elems;
    if (used_ > high_water_) high_water_ = used_;
  }

  /// Releases previously acquired elements.  Releasing more than acquired is
  /// a programming error (typically a double-release); the count is clamped
  /// so accounting can continue, but the ledger is *poisoned*: the underflow
  /// is recorded and surfaced via poisoned() / Machine::ledger_poisoned(),
  /// so tests and metrics catch the bug instead of it silently erasing part
  /// of the footprint.  noexcept because it runs from destructors.
  void release(std::size_t elems) noexcept {
    if (elems > used_) {
      poisoned_ = true;
      over_released_ += elems - used_;
      used_ = 0;
      return;
    }
    used_ -= elems;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  bool strict() const { return strict_; }

  /// True once any release() exceeded the acquired balance.  A poisoned
  /// ledger's used()/high_water() are no longer trustworthy bounds.
  bool poisoned() const { return poisoned_; }
  /// Total elements released beyond the acquired balance.
  std::size_t over_released() const { return over_released_; }
  void clear_poison() {
    poisoned_ = false;
    over_released_ = 0;
  }

  void reset_high_water() { high_water_ = used_; }

 private:
  std::size_t capacity_;
  bool strict_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  bool poisoned_ = false;
  std::size_t over_released_ = 0;
};

/// RAII registration of `elems` resident elements with a ledger.
/// Move-only; the destructor releases.
class MemoryReservation {
 public:
  MemoryReservation() = default;

  MemoryReservation(MemoryLedger& ledger, std::size_t elems)
      : ledger_(&ledger), elems_(elems) {
    ledger_->acquire(elems_);
  }

  MemoryReservation(MemoryReservation&& o) noexcept
      : ledger_(o.ledger_), elems_(o.elems_) {
    o.ledger_ = nullptr;
    o.elems_ = 0;
  }

  MemoryReservation& operator=(MemoryReservation&& o) noexcept {
    if (this != &o) {
      reset();
      ledger_ = o.ledger_;
      elems_ = o.elems_;
      o.ledger_ = nullptr;
      o.elems_ = 0;
    }
    return *this;
  }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { reset(); }

  /// Changes the reservation size (acquire/release the delta).  Strongly
  /// exception-safe: a strict-mode CapacityError from the grow path leaves
  /// both the ledger and elems_ exactly as they were, so the destructor
  /// still releases the true outstanding amount.  The ledger must mutate
  /// *before* elems_ is updated — the reverse order would, on throw, leave
  /// elems_ claiming elements the ledger never granted.
  void resize(std::size_t elems) {
    if (ledger_ == nullptr) return;
    if (elems > elems_) {
      ledger_->acquire(elems - elems_);  // may throw; no state changed yet
    } else if (elems < elems_) {
      ledger_->release(elems_ - elems);  // noexcept
    }
    elems_ = elems;
  }

  void reset() noexcept {
    if (ledger_ != nullptr) ledger_->release(elems_);
    ledger_ = nullptr;
    elems_ = 0;
  }

  std::size_t elems() const { return elems_; }

  /// True if this reservation is registered with a ledger (false for
  /// default-constructed or moved-from reservations).
  bool attached() const { return ledger_ != nullptr; }

 private:
  MemoryLedger* ledger_ = nullptr;
  std::size_t elems_ = 0;
};

}  // namespace aem
