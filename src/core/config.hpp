// Configuration of the (M,B,omega)-Asymmetric External Memory machine.
//
// The AEM model (Blelloch et al., SPAA'15; Jacob & Sitchinava, SPAA'17) is a
// two-level memory hierarchy: an internal (symmetric) memory of M elements
// and an unbounded external (asymmetric) memory accessed in blocks of B
// elements.  A block read costs 1, a block write costs omega >= 1.  The cost
// of a computation is Q = Q_r + omega * Q_w; internal computation is free.
//
// The symmetric external memory model of Aggarwal & Vitter is the omega = 1
// special case, and the (M,omega)-ARAM of Blelloch et al. is the B = 1 case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "core/cache.hpp"
#include "util/math.hpp"

namespace aem {

struct Config {
  /// Internal memory capacity in elements (the paper's M).
  std::size_t memory_elems = 1024;
  /// Block size in elements (the paper's B).
  std::size_t block_elems = 16;
  /// Cost of one block write relative to one block read (the paper's omega).
  std::uint64_t write_cost = 1;
  /// If true, exceeding the internal memory capacity throws CapacityError.
  bool strict = true;
  /// Capacity multiplier: Lemma 4.1 simulates a program on a 2M machine, so
  /// round-based replays set this to 2.  Capacity = memory_elems * factor.
  double capacity_factor = 1.0;
  /// Optional write-back block cache (core/cache.hpp).  The default —
  /// capacity 0 — is strict bypass: no pool is created and the I/O path is
  /// byte-identical to the uncached machine.
  CacheConfig cache{};

  /// m = ceil(M / B): number of blocks that fit in internal memory.
  std::size_t m() const { return util::ceil_div(memory_elems, block_elems); }

  /// n = ceil(N / B): number of blocks occupied by N elements.
  std::size_t blocks_for(std::size_t elems) const {
    return util::ceil_div(elems, block_elems);
  }

  /// Effective internal-memory capacity in elements.  Integral factors —
  /// and in particular factor 2, the only case Lemma 4.1's round-based
  /// replay needs — are computed in pure integer arithmetic (saturating at
  /// SIZE_MAX): routing M through a double loses low bits once M exceeds
  /// 2^53, which would silently shrink (or grow) the 2M replay machine.
  std::size_t capacity() const {
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    const auto whole = static_cast<std::size_t>(capacity_factor);
    if (capacity_factor == static_cast<double>(whole)) {
      std::size_t cap = 0;
      if (__builtin_mul_overflow(memory_elems, whole, &cap)) return kMax;
      return cap;
    }
    const double cap = static_cast<double>(memory_elems) * capacity_factor;
    if (cap >= static_cast<double>(kMax)) return kMax;
    return static_cast<std::size_t>(cap);
  }

  /// Throws std::invalid_argument unless M >= B >= 1 and omega >= 1.
  void validate() const {
    if (block_elems == 0) throw std::invalid_argument("B must be >= 1");
    if (memory_elems < block_elems)
      throw std::invalid_argument("M must be >= B");
    if (write_cost == 0) throw std::invalid_argument("omega must be >= 1");
    if (capacity_factor < 1.0)
      throw std::invalid_argument("capacity_factor must be >= 1");
    cache.validate();
  }
};

}  // namespace aem
