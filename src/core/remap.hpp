// Wear-leveling remap table: logical block -> spare physical block.
//
// When a FaultPolicy retires a physical block (its lifetime write count
// exceeded the endurance budget), the owning ExtArray migrates the logical
// block to a spare from a fixed per-array pool and records the redirection
// here.  Subsequent reads and writes of the logical block transparently hit
// the spare — algorithms never see the migration, only the extra charged
// I/Os it took.  Spares themselves wear and can retire, triggering another
// remap; the pool is finite, so a worn-out device eventually surfaces as
// SparesExhausted, the graceful-degradation endpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace aem {

/// Thrown when a retired block needs a spare and the pool is empty — the
/// device has worn out past the point of graceful degradation.
class SparesExhausted : public std::runtime_error {
 public:
  SparesExhausted(std::uint64_t logical, std::size_t capacity);

  std::uint64_t logical_block() const { return logical_; }
  std::size_t spare_capacity() const { return capacity_; }

 private:
  std::uint64_t logical_;
  std::size_t capacity_;
};

class RemapTable {
 public:
  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  explicit RemapTable(std::size_t spare_capacity = 0)
      : capacity_(spare_capacity) {}

  /// Spare slot currently backing `logical`, or npos if not remapped.
  std::uint64_t slot_of(std::uint64_t logical) const {
    const auto it = map_.find(logical);
    return it == map_.end() ? npos : it->second;
  }

  /// Redirects `logical` to the next unused spare slot and returns it.
  /// Remapping an already-remapped block consumes a fresh spare (the worn
  /// spare is abandoned).  Throws SparesExhausted when the pool is empty.
  std::uint64_t remap(std::uint64_t logical) {
    if (used_ >= capacity_) throw SparesExhausted(logical, capacity_);
    const std::uint64_t slot = used_++;
    map_[logical] = slot;
    return slot;
  }

  bool empty() const { return map_.empty(); }
  /// Number of logical blocks currently redirected.
  std::size_t active() const { return map_.size(); }
  /// Spare slots consumed over the table's lifetime (>= active(): a block
  /// remapped twice burned two spares).
  std::size_t spares_used() const { return used_; }
  std::size_t spare_capacity() const { return capacity_; }

  const std::unordered_map<std::uint64_t, std::uint64_t>& mapping() const {
    return map_;
  }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

}  // namespace aem
