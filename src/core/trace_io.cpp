#include "core/trace_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace aem {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# aem trace v1, ops=" << trace.size() << "\n";
  for (const TraceOp& op : trace.ops()) {
    os << (op.kind == OpKind::kRead ? 'R' : 'W') << ' ' << op.array << ' '
       << op.block;
    if (op.kind == OpKind::kRead && !op.used.empty()) {
      os << " u";
      for (std::uint64_t id : op.used) os << ' ' << id;
    }
    if (op.kind == OpKind::kWrite && !op.atoms.empty()) {
      os << " a";
      for (std::uint64_t id : op.atoms) os << ' ' << id;
    }
    os << '\n';
  }
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(is, line))
    throw std::invalid_argument(
        "trace: empty input (expected '# aem trace v1' header)");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  static const std::string kMagic = "# aem trace v1";
  if (line.compare(0, kMagic.size(), kMagic) != 0)
    throw std::invalid_argument(
        "trace: not an aem trace (first line must begin with '" + kMagic +
        "', got '" + line.substr(0, 40) + "')");
  // The declared op count is cross-checked against the parsed count below.
  // It is deliberately NOT used to pre-reserve storage, so a corrupted
  // length field can produce an error message but never a huge allocation.
  bool have_ops = false;
  std::uint64_t declared_ops = 0;
  if (const std::size_t pos = line.find("ops="); pos != std::string::npos) {
    const std::string field = line.substr(pos + 4);
    char* end = nullptr;
    errno = 0;
    declared_ops = std::strtoull(field.c_str(), &end, 10);
    if (end == field.c_str() || errno == ERANGE)
      throw std::invalid_argument("trace header: malformed ops count '" +
                                  field + "'");
    have_ops = true;
  }
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    std::uint32_t array;
    std::uint64_t block;
    if (!(ls >> kind >> array >> block) || (kind != 'R' && kind != 'W'))
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": expected 'R|W <array> <block>'");
    IoTicket t = trace.add(kind == 'R' ? OpKind::kRead : OpKind::kWrite,
                           array, block);
    std::string tag;
    if (ls >> tag) {
      const bool want_use = (kind == 'R' && tag == "u");
      const bool want_atoms = (kind == 'W' && tag == "a");
      if (!want_use && !want_atoms)
        throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                    ": unexpected tag '" + tag + "'");
      std::vector<std::uint64_t> ids;
      std::uint64_t id;
      while (ls >> id) ids.push_back(id);
      if (!ls.eof())
        throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                    ": malformed id list");
      if (want_use) {
        for (std::uint64_t v : ids) trace.mark_used(t, v);
      } else {
        trace.set_atoms(t, std::move(ids));
      }
    }
  }
  if (have_ops && trace.size() != declared_ops) {
    if (trace.size() < declared_ops)
      throw std::invalid_argument(
          "trace truncated: header declares " + std::to_string(declared_ops) +
          " ops but only " + std::to_string(trace.size()) + " present");
    throw std::invalid_argument(
        "trace oversized: header declares " + std::to_string(declared_ops) +
        " ops but " + std::to_string(trace.size()) + " present");
  }
  return trace;
}

}  // namespace aem
