#include "core/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace aem {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# aem trace v1, ops=" << trace.size() << "\n";
  for (const TraceOp& op : trace.ops()) {
    os << (op.kind == OpKind::kRead ? 'R' : 'W') << ' ' << op.array << ' '
       << op.block;
    if (op.kind == OpKind::kRead && !op.used.empty()) {
      os << " u";
      for (std::uint64_t id : op.used) os << ' ' << id;
    }
    if (op.kind == OpKind::kWrite && !op.atoms.empty()) {
      os << " a";
      for (std::uint64_t id : op.atoms) os << ' ' << id;
    }
    os << '\n';
  }
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    std::uint32_t array;
    std::uint64_t block;
    if (!(ls >> kind >> array >> block) || (kind != 'R' && kind != 'W'))
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": expected 'R|W <array> <block>'");
    IoTicket t = trace.add(kind == 'R' ? OpKind::kRead : OpKind::kWrite,
                           array, block);
    std::string tag;
    if (ls >> tag) {
      const bool want_use = (kind == 'R' && tag == "u");
      const bool want_atoms = (kind == 'W' && tag == "a");
      if (!want_use && !want_atoms)
        throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                    ": unexpected tag '" + tag + "'");
      std::vector<std::uint64_t> ids;
      std::uint64_t id;
      while (ls >> id) ids.push_back(id);
      if (!ls.eof())
        throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                    ": malformed id list");
      if (want_use) {
        for (std::uint64_t v : ids) trace.mark_used(t, v);
      } else {
        trace.set_atoms(t, std::move(ids));
      }
    }
  }
  return trace;
}

}  // namespace aem
