// I/O trace recording.
//
// A recorded trace is the executable counterpart of the paper's notion of a
// *program* (Section 2): a fixed sequence of block reads and writes.  Traces
// drive two pieces of lower-bound machinery:
//
//  * rounds/   — Lemma 4.1's round decomposition and round-based rewrite
//                only need the op sequence and each op's cost;
//  * flash/    — Lemma 4.3's simulation in the unit-cost flash model
//                additionally needs, per write, the identities of the atoms
//                placed in the block and, per read, which atoms the program
//                *uses* (the copies that eventually reach the output).
//
// Atom identities are opaque uint64 tags supplied by the algorithms that opt
// into atom tracking (the permutation programs do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/stats.hpp"

namespace aem {

enum class OpKind : std::uint8_t { kRead, kWrite };

struct TraceOp {
  OpKind kind = OpKind::kRead;
  std::uint32_t array = 0;   // machine-assigned array id
  std::uint64_t block = 0;   // block index within the array
  /// For writes: atom ids stored in the block, in block order.  Empty unless
  /// the writing array has an atom extractor and tracing is enabled.
  std::vector<std::uint64_t> atoms;
  /// For reads: ids of atoms this read consumes (the copies kept in internal
  /// memory that eventually reach the output).  Filled by the algorithm via
  /// Trace::mark_used.
  std::vector<std::uint64_t> used;

  std::uint64_t cost(std::uint64_t omega) const {
    return kind == OpKind::kWrite ? omega : 1;
  }
};

/// Ticket identifying a trace entry; invalid() when tracing is off.
struct IoTicket {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  bool valid() const { return index != std::numeric_limits<std::size_t>::max(); }
};

class Trace {
 public:
  IoTicket add(OpKind kind, std::uint32_t array, std::uint64_t block);

  /// Records the atoms written by op `t` (write ops only).
  void set_atoms(IoTicket t, std::vector<std::uint64_t> atoms);

  /// Marks atom `id` as consumed by read op `t`.
  void mark_used(IoTicket t, std::uint64_t id);

  std::size_t size() const { return ops_.size(); }
  const TraceOp& op(std::size_t i) const { return ops_[i]; }
  const std::vector<TraceOp>& ops() const { return ops_; }

  /// Aggregate counters over the whole trace.
  IoStats stats() const;

  /// Total cost sum over ops at the given omega.
  std::uint64_t cost(std::uint64_t omega) const;

  void clear() { ops_.clear(); }

 private:
  std::vector<TraceOp> ops_;
};

}  // namespace aem
