// Structured machine observability: a stable, versioned snapshot of
// everything a Machine measures — I/O counters, per-phase attribution,
// ledger high-water, wear histogram summary, trace status, and the machine
// configuration — serialized to a line of JSON.
//
// Consumers: bench binaries (--metrics=FILE appends one snapshot per
// measured case), scripts/run_experiments.sh (collects the per-bench
// .metrics.jsonl files), and tools/aem_trace (--json=FILE renders a
// recorded trace in the same schema).  The schema is documented in
// docs/MODEL.md section 8 and versioned by the "schema" field, so external
// tooling can detect incompatible changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "core/faults.hpp"
#include "core/stats.hpp"

namespace aem {

class Machine;

struct PhaseMetrics {
  std::string name;
  IoStats io;
};

struct ArrayWearMetrics {
  std::string name;  // empty if the array id is unknown to the machine
  std::uint32_t array = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t writes = 0;
  std::uint64_t max_writes = 0;
};

/// One row per backend device of a ShardedMachine (core/sharding.hpp).
struct ShardDeviceMetrics {
  std::string name;  // "dev0", "dev1", ...
  std::uint64_t memory_elems = 0;
  std::uint64_t block_elems = 0;
  std::uint64_t write_cost = 1;
  std::uint64_t amplification = 1;  // native transfers per logical block
  IoStats io;                       // native transfer counts
  std::uint64_t cost = 0;           // reads + write_cost * writes, per device
  bool wear_enabled = false;
  std::uint64_t wear_blocks_written = 0;
  std::uint64_t wear_max_writes = 0;
  double wear_mean_writes = 0.0;
};

/// The v4 `sharding` section: per-device rows plus totals.  Default-state
/// (`enabled == false`, empty rows) on a plain Machine.
struct ShardingMetrics {
  bool enabled = false;
  std::string placement;            // "round-robin" | "range"
  std::uint64_t chunk_blocks = 0;   // range-placement chunk length
  IoStats total_io;                 // sum of per-device native transfers
  std::uint64_t total_cost = 0;     // sum of per-device costs (device omegas)
  double wear_spread = 0.0;         // max/mean device write counts (1 = even)
  std::vector<ShardDeviceMetrics> devices;
};

/// The v5 `store` section: KV-store layout, index size, and serving
/// counters.  The machine knows nothing about stores, so snapshot_metrics
/// leaves this default (`enabled == false`); benches that measure a store
/// attach it by hand (`snap.store = store.metrics_section()`).
struct StoreMetrics {
  bool enabled = false;
  std::string index;  // "fence" | "compact"
  std::uint64_t records = 0;
  std::uint64_t log_blocks = 0;
  std::uint64_t payload_words = 0;
  std::uint64_t payload_blocks = 0;
  std::uint64_t index_bits = 0;
  double index_bits_per_page = 0.0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_log_reads = 0;
  std::uint64_t get_payload_reads = 0;
  std::uint64_t max_get_log_reads = 0;
  std::uint64_t scans = 0;
  std::uint64_t scan_records = 0;
  std::uint64_t puts = 0;
  std::uint64_t put_hits = 0;
  std::uint64_t put_log_reads = 0;
  std::uint64_t put_writes = 0;
  std::uint64_t orphaned_words = 0;
  std::uint64_t build_reads = 0;
  std::uint64_t build_writes = 0;
  std::uint64_t build_cost = 0;
};

/// One row per device with a configured outage window (v6 `reliability`
/// section; core/sharding.hpp OutageSpec/OutageStats).
struct OutageMetrics {
  std::string name;  // "dev0", "dev1", ...
  std::uint64_t device = 0;
  std::uint64_t down_at = 0;
  std::uint64_t up_at = 0;        // 0 = never recovers
  bool down_now = false;          // inside the window at snapshot time
  std::uint64_t wait_rounds = 0;
  std::uint64_t backoff_ios = 0;  // charged frontend poll reads
  std::uint64_t failed_reads = 0;
  std::uint64_t queued_writes = 0;
  std::uint64_t drained_writes = 0;
  std::uint64_t pending_writes = 0;  // still queued at snapshot time
};

/// The v6 `reliability` section: the crash-point schedule and hits, the
/// unified retry/backoff counters, the recovery bill noted on the machine
/// (Machine::note_recovery — e.g. KvStore::recover), and one degraded-
/// serving row per device with an outage window.  `enabled` is false — and
/// everything zero/empty — when none of those features has been armed or
/// exercised.
struct ReliabilityMetrics {
  bool enabled = false;
  std::uint64_t crash_after_writes = 0;  // configured crash point (0 = none)
  std::uint64_t crashes = 0;             // CrashErrors fired
  std::uint64_t retry_attempts = 0;      // backed-off retry attempts
  std::uint64_t backoff_ios = 0;         // charged backoff poll reads
  RecoveryStats recovery;
  std::vector<OutageMetrics> outages;
};

/// The v7 `traffic` section: request-stream serving figures — the generated
/// /served/rejected identity, per-request charged-Q percentiles over the
/// engine's fixed-bucket histogram, device-load imbalance, and the wear-out
/// horizon.  The machine knows nothing about traffic engines, so
/// snapshot_metrics leaves this default (`enabled == false`); benches that
/// drive an engine attach it by hand
/// (`snap.traffic = engine.metrics_section()`).
struct TrafficMetrics {
  bool enabled = false;
  std::string dist;  // "uniform" | "zipf" | "hotset"
  std::uint64_t generated = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;       // admission-control rejections
  double rejection_rate = 0.0;      // rejected / generated (the SLO metric)
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t scans = 0;
  std::uint64_t reads = 0;   // charged frontend reads across the run
  std::uint64_t writes = 0;  // charged frontend writes across the run
  std::uint64_t cost = 0;    // charged frontend Q across the run
  std::uint64_t q_p50 = 0;   // per-request charged-Q percentiles
  std::uint64_t q_p99 = 0;
  std::uint64_t q_p999 = 0;
  std::uint64_t q_max = 0;
  double q_mean = 0.0;
  double imbalance = 1.0;  // per-device served-cost max/mean (1 = even)
  /// Stream replays until the hottest device block retires (0 = no
  /// endurance configured or no writes observed).
  std::uint64_t wear_horizon = 0;
  std::uint64_t windows = 0;   // admission windows entered
  std::uint64_t q_budget = 0;  // per-window Q budget (0 = off)
};

/// The v8 `lowwrite` section: one low-write-suite comparison row
/// (bench_w1_lowwrite) — the measured variant's charged I/O against its
/// classical counterpart on the same input, the wear horizon each sustains
/// (reruns until the hottest block reaches the configured endurance), and
/// the put path's absorbed page-group count.  The machine knows nothing
/// about algorithm variants, so snapshot_metrics leaves this default
/// (`enabled == false`); the bench attaches it by hand.
struct LowwriteMetrics {
  bool enabled = false;
  std::string family;   // "sort" | "pq" | "puts"
  std::string variant;  // "samplesort_rf" | "pq_buffered" | "puts_batched"
  std::uint64_t n = 0;  // elements sorted / stream length / put ops
  std::uint64_t reads = 0;   // variant charged reads
  std::uint64_t writes = 0;  // variant charged writes
  std::uint64_t cost = 0;    // variant charged Q
  std::uint64_t base_reads = 0;   // classical baseline, same input
  std::uint64_t base_writes = 0;
  std::uint64_t base_cost = 0;
  std::uint64_t wear_horizon = 0;       // variant (0 = endurance unset)
  std::uint64_t base_wear_horizon = 0;  // baseline
  std::uint64_t absorbed_groups = 0;    // puts: distinct page groups touched
  std::string q_winner;       // "variant" | "baseline" | "tie"
  std::string writes_winner;  // same, on writes alone
};

/// A point-in-time copy of a Machine's observable state.  Plain data: it can
/// also be filled by hand (tools/aem_trace builds one from a trace without a
/// live machine).
struct MetricsSnapshot {
  static constexpr std::string_view kSchema = "aem.machine.metrics/v8";

  /// Free-form tag naming the measured case ("E1 N=65536 omega=16", ...).
  std::string label;

  // config
  std::uint64_t memory_elems = 0;
  std::uint64_t block_elems = 0;
  std::uint64_t write_cost = 1;
  bool strict = true;
  double capacity_factor = 1.0;
  std::uint64_t capacity = 0;

  // io
  IoStats io;
  std::uint64_t cost = 0;

  // ledger
  std::uint64_t ledger_used = 0;
  std::uint64_t ledger_high_water = 0;
  bool ledger_poisoned = false;
  std::uint64_t ledger_over_released = 0;

  // phases (only those that performed I/O, in registration order)
  std::vector<PhaseMetrics> phases;

  // wear
  bool wear_enabled = false;
  std::uint64_t wear_blocks_written = 0;
  std::uint64_t wear_max_writes = 0;
  double wear_mean_writes = 0.0;
  std::vector<ArrayWearMetrics> wear_arrays;

  // faults (v2: fault-injection config and counters; `faults.enabled` is
  // false — and the counters zero — when no FaultPolicy is installed)
  bool faults_enabled = false;
  FaultConfig fault_config;
  FaultStats fault_stats;

  // cache (v3: block-cache config, counters, and residency; `cache.enabled`
  // is false — and everything else zero/default — in bypass mode)
  bool cache_enabled = false;
  CacheConfig cache_config;
  std::uint64_t cache_window = 0;  // effective kCleanFirst window
  CacheStats cache_stats;
  std::uint64_t cache_resident = 0;
  std::uint64_t cache_resident_dirty = 0;

  // sharding (v4: multi-device aggregation; `sharding.enabled` is false —
  // and the rows empty — when the machine is not a ShardedMachine)
  ShardingMetrics sharding;

  // store (v5: KV-store section, attached by the measuring bench — see
  // StoreMetrics above)
  StoreMetrics store;

  // reliability (v6: crash schedule, retry/backoff, recovery bill, and
  // per-device outage rows — see ReliabilityMetrics above)
  ReliabilityMetrics reliability;

  // traffic (v7: request-stream serving section, attached by the measuring
  // bench — see TrafficMetrics above)
  TrafficMetrics traffic;

  // lowwrite (v8: low-write algorithm-suite comparison row, attached by the
  // measuring bench — see LowwriteMetrics above)
  LowwriteMetrics lowwrite;

  // trace
  bool trace_enabled = false;
  std::uint64_t trace_ops = 0;

  // registered arrays, by id
  std::vector<std::string> arrays;
};

/// Snapshots the machine's current state.  Read-only and out of the hot
/// path: call it once per measured case, not per I/O.
MetricsSnapshot snapshot_metrics(const Machine& mach, std::string label = "");

/// Serializes the snapshot as a single-line JSON object (stable key order).
void write_json(std::ostream& os, const MetricsSnapshot& s);
std::string to_json(const MetricsSnapshot& s);

/// JSON string escaping (exposed for tests and ad-hoc emitters).
std::string json_escape(std::string_view s);

}  // namespace aem
