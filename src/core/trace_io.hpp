// Trace serialization: a line-oriented text format for recorded programs.
//
// Traces are the interchange point between the simulator and the
// lower-bound machinery (rounds/, flash/); serializing them lets
// experiments persist programs for offline analysis and diffing.
//
// Format (one op per line, '#' comments ignored):
//   R <array> <block> [u <id>...]     read, optional use-set
//   W <array> <block> [a <id>...]     write, optional atom list
#pragma once

#include <iosfwd>

#include "core/trace.hpp"

namespace aem {

/// Writes `trace` in the text format above.
void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace; throws std::invalid_argument on malformed input.
Trace read_trace(std::istream& is);

}  // namespace aem
