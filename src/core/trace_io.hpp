// Trace serialization: a line-oriented text format for recorded programs.
//
// Traces are the interchange point between the simulator and the
// lower-bound machinery (rounds/, flash/); serializing them lets
// experiments persist programs for offline analysis and diffing.
//
// Format:
//   # aem trace v1, ops=<N>           mandatory magic/version header
//   R <array> <block> [u <id>...]     read, optional use-set
//   W <array> <block> [a <id>...]     write, optional atom list
// Subsequent '#' lines and blank lines are ignored.  The ops=<N> count is
// cross-checked on read: a truncated or padded file is rejected.
#pragma once

#include <iosfwd>

#include "core/trace.hpp"

namespace aem {

/// Writes `trace` in the text format above, header included.
void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace; throws std::invalid_argument on any malformed input —
/// missing/bad magic header, unparsable op lines, or an op count that does
/// not match the header's ops=<N>.  The declared count is never used to
/// pre-allocate, so corrupt headers cannot trigger pathological
/// allocations.
Trace read_trace(std::istream& is);

}  // namespace aem
