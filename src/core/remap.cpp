#include "core/remap.hpp"

#include <string>

namespace aem {

SparesExhausted::SparesExhausted(std::uint64_t logical, std::size_t capacity)
    : std::runtime_error("spare blocks exhausted: logical block " +
                         std::to_string(logical) +
                         " needs a spare but all " + std::to_string(capacity) +
                         " are consumed (device worn out)"),
      logical_(logical),
      capacity_(capacity) {}

}  // namespace aem
