#include "core/machine.hpp"

#include <stdexcept>

namespace aem {

Machine::Machine(Config cfg)
    : cfg_(cfg), ledger_(cfg.capacity(), cfg.strict) {
  cfg_.validate();
  if (cfg_.cache.capacity_blocks != 0) install_cache(cfg_.cache);
}

void Machine::reset_stats() {
  stats_ = IoStats{};
  clear_phase_stats();
  ledger_.reset_high_water();
  recovery_ = RecoveryStats{};
  if (wear_) wear_->clear();
  // Rewind the fault schedule too: a measured case that begins with
  // reset_stats() sees the same faults whether or not staging ran before.
  // (This also re-arms a fired crash point — the write clock restarts.)
  if (faults_) faults_->reset();
  // Cache COUNTERS reset; resident blocks and dirtiness are kept (they are
  // real state, and dropping dirtiness would silently lose deferred
  // writes).  Flush before reset for clean per-case accounting.
  if (cache_) cache_->reset_stats();
}

void Machine::install_faults(FaultConfig cfg) {
  faults_ = std::make_unique<FaultPolicy>(cfg);
}

void Machine::install_cache(CacheConfig cfg) {
  cfg.validate();
  if (cfg.capacity_blocks == 0) {
    cache_.reset();  // bypass mode: no pool at all
    return;
  }
  cache_ = std::make_unique<BlockCache>(cfg, cfg_.write_cost);
}

std::uint32_t Machine::intern_phase(std::string_view name) {
  if (auto it = phase_ids_.find(name); it != phase_ids_.end())
    return it->second;
  const auto id = static_cast<std::uint32_t>(phase_names_.size());
  phase_names_.emplace_back(name);
  phase_ids_.emplace(phase_names_.back(), id);
  phase_totals_.emplace_back();
  phase_active_.push_back(0);
  return id;
}

Machine::PhaseScope::PhaseScope(Machine& mach, std::string_view name)
    : mach_(mach) {
  const std::uint32_t id = mach_.intern_phase(name);
  // Dedup decided once, here: a name already active contributes nothing to
  // attribute(), so the hot path never compares names.
  owns_slot_ = (mach_.phase_active_[id] == 0);
  if (owns_slot_) {
    mach_.phase_active_[id] = 1;
    mach_.active_phases_.push_back(id);
  }
}

Machine::PhaseScope::~PhaseScope() {
  if (owns_slot_) {
    // Scopes are strictly nested, so the owned id is the most recent one.
    mach_.phase_active_[mach_.active_phases_.back()] = 0;
    mach_.active_phases_.pop_back();
  }
}

std::map<std::string, IoStats> Machine::phase_stats() const {
  std::map<std::string, IoStats> out;
  for (std::size_t id = 0; id < phase_names_.size(); ++id) {
    const IoStats& s = phase_totals_[id];
    if (s.reads != 0 || s.writes != 0) out.emplace(phase_names_[id], s);
  }
  return out;
}

void Machine::clear_phase_stats() {
  // Zero the totals but keep names interned: ids held by live PhaseScopes
  // stay valid, and re-entered phases reuse their slot without rehashing.
  for (IoStats& s : phase_totals_) s = IoStats{};
}

const std::string& Machine::phase_name(std::uint32_t id) const {
  if (id >= phase_names_.size()) throw std::out_of_range("unknown phase id");
  return phase_names_[id];
}

const IoStats& Machine::phase_io(std::uint32_t id) const {
  if (id >= phase_totals_.size()) throw std::out_of_range("unknown phase id");
  return phase_totals_[id];
}

void Machine::enable_trace() { trace_ = std::make_unique<Trace>(); }

void Machine::disable_trace() { trace_.reset(); }

std::unique_ptr<Trace> Machine::take_trace() { return std::move(trace_); }

std::uint32_t Machine::register_array(std::string name) {
  arrays_.push_back(std::move(name));
  return static_cast<std::uint32_t>(arrays_.size() - 1);
}

const std::string& Machine::array_name(std::uint32_t id) const {
  if (id >= arrays_.size()) throw std::out_of_range("unknown array id");
  return arrays_[id];
}

IoTicket Machine::on_read(std::uint32_t array, std::uint64_t block) {
  ++stats_.reads;
  attribute(/*is_write=*/false);
  if (faults_) faults_->check_budget(stats_, cfg_.write_cost);
  if (trace_) return trace_->add(OpKind::kRead, array, block);
  return IoTicket{};
}

IoTicket Machine::on_write(std::uint32_t array, std::uint64_t block) {
  ++stats_.writes;
  attribute(/*is_write=*/true);
  if (faults_) faults_->check_budget(stats_, cfg_.write_cost);
  if (wear_) record_wear(array, block);
  if (trace_) return trace_->add(OpKind::kWrite, array, block);
  return IoTicket{};
}

Machine::WearStats Machine::wear_stats() const {
  WearStats ws;
  if (!wear_) return ws;
  std::uint64_t total = 0;
  for (const auto& blocks : *wear_) {
    for (std::uint64_t count : blocks) {
      if (count == 0) continue;
      ++ws.blocks_written;
      total += count;
      if (count > ws.max_writes) ws.max_writes = count;
    }
  }
  if (ws.blocks_written != 0)
    ws.mean_writes =
        static_cast<double>(total) / static_cast<double>(ws.blocks_written);
  return ws;
}

std::vector<Machine::ArrayWear> Machine::wear_by_array() const {
  std::vector<ArrayWear> out;
  if (!wear_) return out;
  for (std::size_t a = 0; a < wear_->size(); ++a) {
    const auto& blocks = (*wear_)[a];
    ArrayWear aw;
    aw.array = static_cast<std::uint32_t>(a);
    for (std::uint64_t count : blocks) {
      if (count == 0) continue;
      ++aw.blocks_written;
      aw.writes += count;
      if (count > aw.max_writes) aw.max_writes = count;
    }
    if (aw.blocks_written != 0) out.push_back(aw);
  }
  return out;
}

}  // namespace aem
