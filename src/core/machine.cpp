#include "core/machine.hpp"

#include <stdexcept>

namespace aem {

Machine::Machine(Config cfg)
    : cfg_(cfg), ledger_(cfg.capacity(), cfg.strict) {
  cfg_.validate();
}

void Machine::reset_stats() {
  stats_ = IoStats{};
  phases_.clear();
  ledger_.reset_high_water();
  if (wear_) wear_->clear();
}

Machine::PhaseScope::PhaseScope(Machine& mach, std::string name) : mach_(mach) {
  mach_.phase_stack_.push_back(std::move(name));
}

Machine::PhaseScope::~PhaseScope() { mach_.phase_stack_.pop_back(); }

void Machine::enable_trace() { trace_ = std::make_unique<Trace>(); }

void Machine::disable_trace() { trace_.reset(); }

std::unique_ptr<Trace> Machine::take_trace() { return std::move(trace_); }

std::uint32_t Machine::register_array(std::string name) {
  arrays_.push_back(std::move(name));
  return static_cast<std::uint32_t>(arrays_.size() - 1);
}

const std::string& Machine::array_name(std::uint32_t id) const {
  if (id >= arrays_.size()) throw std::out_of_range("unknown array id");
  return arrays_[id];
}

void Machine::attribute(bool is_write) {
  // Hierarchical attribution: an I/O counts toward every phase on the
  // stack (each name at most once), so outer phases subsume inner ones.
  for (std::size_t i = 0; i < phase_stack_.size(); ++i) {
    bool repeated = false;
    for (std::size_t j = 0; j < i; ++j)
      repeated |= (phase_stack_[j] == phase_stack_[i]);
    if (repeated) continue;
    IoStats& s = phases_[phase_stack_[i]];
    if (is_write) {
      ++s.writes;
    } else {
      ++s.reads;
    }
  }
}

IoTicket Machine::on_read(std::uint32_t array, std::uint64_t block) {
  ++stats_.reads;
  attribute(/*is_write=*/false);
  if (trace_) return trace_->add(OpKind::kRead, array, block);
  return IoTicket{};
}

IoTicket Machine::on_write(std::uint32_t array, std::uint64_t block) {
  ++stats_.writes;
  attribute(/*is_write=*/true);
  if (wear_) ++(*wear_)[{array, block}];
  if (trace_) return trace_->add(OpKind::kWrite, array, block);
  return IoTicket{};
}

Machine::WearStats Machine::wear_stats() const {
  WearStats ws;
  if (!wear_ || wear_->empty()) return ws;
  std::uint64_t total = 0;
  for (const auto& [key, count] : *wear_) {
    ++ws.blocks_written;
    total += count;
    if (count > ws.max_writes) ws.max_writes = count;
  }
  ws.mean_writes =
      static_cast<double>(total) / static_cast<double>(ws.blocks_written);
  return ws;
}

}  // namespace aem
