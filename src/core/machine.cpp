#include "core/machine.hpp"

#include <stdexcept>

namespace aem {

Machine::Machine(Config cfg)
    : cfg_(cfg), ledger_(cfg.capacity(), cfg.strict) {
  cfg_.validate();
  if (cfg_.cache.capacity_blocks != 0) install_cache(cfg_.cache);
}

void Machine::reset_stats() {
  stats_ = IoStats{};
  clear_phase_stats();
  ledger_.reset_high_water();
  recovery_ = RecoveryStats{};
  if (wear_) wear_->clear();
  // Rewind the fault schedule too: a measured case that begins with
  // reset_stats() sees the same faults whether or not staging ran before.
  // (This also re-arms a fired crash point — the write clock restarts.)
  if (faults_) faults_->reset();
  // Cache COUNTERS reset; resident blocks and dirtiness are kept (they are
  // real state, and dropping dirtiness would silently lose deferred
  // writes).  Flush before reset for clean per-case accounting.
  if (cache_) cache_->reset_stats();
}

void Machine::install_faults(FaultConfig cfg) {
  faults_ = std::make_unique<FaultPolicy>(cfg);
}

void Machine::install_cache(CacheConfig cfg) {
  cfg.validate();
  if (cfg.capacity_blocks == 0) {
    cache_.reset();  // bypass mode: no pool at all
    return;
  }
  cache_ = std::make_unique<BlockCache>(cfg, cfg_.write_cost);
}

std::uint32_t Machine::intern_phase(std::string_view name) {
  if (auto it = phase_ids_.find(name); it != phase_ids_.end())
    return it->second;
  const auto id = static_cast<std::uint32_t>(phase_names_.size());
  phase_names_.emplace_back(name);
  phase_ids_.emplace(phase_names_.back(), id);
  phase_totals_.emplace_back();
  phase_active_.push_back(0);
  return id;
}

Machine::PhaseScope::PhaseScope(Machine& mach, std::string_view name)
    : mach_(mach) {
  const std::uint32_t id = mach_.intern_phase(name);
  // Dedup decided once, here: a name already active contributes nothing to
  // attribute(), so the hot path never compares names.
  owns_slot_ = (mach_.phase_active_[id] == 0);
  if (owns_slot_) {
    mach_.phase_active_[id] = 1;
    mach_.active_phases_.push_back(id);
  }
}

Machine::PhaseScope::~PhaseScope() {
  if (owns_slot_) {
    // Scopes are strictly nested, so the owned id is the most recent one.
    mach_.phase_active_[mach_.active_phases_.back()] = 0;
    mach_.active_phases_.pop_back();
  }
}

std::map<std::string, IoStats> Machine::phase_stats() const {
  std::map<std::string, IoStats> out;
  for (std::size_t id = 0; id < phase_names_.size(); ++id) {
    const IoStats& s = phase_totals_[id];
    if (s.reads != 0 || s.writes != 0) out.emplace(phase_names_[id], s);
  }
  return out;
}

void Machine::clear_phase_stats() {
  // Zero the totals but keep names interned: ids held by live PhaseScopes
  // stay valid, and re-entered phases reuse their slot without rehashing.
  for (IoStats& s : phase_totals_) s = IoStats{};
}

const std::string& Machine::phase_name(std::uint32_t id) const {
  if (id >= phase_names_.size()) throw std::out_of_range("unknown phase id");
  return phase_names_[id];
}

const IoStats& Machine::phase_io(std::uint32_t id) const {
  if (id >= phase_totals_.size()) throw std::out_of_range("unknown phase id");
  return phase_totals_[id];
}

void Machine::enable_trace() { trace_ = std::make_unique<Trace>(); }

void Machine::disable_trace() { trace_.reset(); }

std::unique_ptr<Trace> Machine::take_trace() { return std::move(trace_); }

std::uint32_t Machine::register_array(std::string name) {
  arrays_.push_back(std::move(name));
  return static_cast<std::uint32_t>(arrays_.size() - 1);
}

const std::string& Machine::array_name(std::uint32_t id) const {
  if (id >= arrays_.size()) throw std::out_of_range("unknown array id");
  return arrays_[id];
}

IoTicket Machine::on_read(std::uint32_t array, std::uint64_t block) {
  ++stats_.reads;
  attribute(/*is_write=*/false);
  if (faults_) faults_->check_budget(stats_, cfg_.write_cost);
  if (trace_) return trace_->add(OpKind::kRead, array, block);
  return IoTicket{};
}

IoTicket Machine::on_write(std::uint32_t array, std::uint64_t block) {
  ++stats_.writes;
  attribute(/*is_write=*/true);
  if (faults_) faults_->check_budget(stats_, cfg_.write_cost);
  if (wear_) record_wear(array, block);
  if (trace_) return trace_->add(OpKind::kWrite, array, block);
  return IoTicket{};
}

void Machine::validate_tickets(std::span<const BlockOp> ops,
                               std::span<IoTicket> tickets) {
  if (!tickets.empty() && tickets.size() != ops.size())
    throw std::invalid_argument(
        "Machine::submit: tickets span must be empty or match ops");
}

Machine::BatchPlan Machine::plan_batch(std::uint64_t reads,
                                       std::uint64_t writes) const {
  if (!faults_) return BatchPlan::kBulk;
  const FaultConfig& fc = faults_->config();
  // The armed power cut falls inside this batch: replay per op, so the
  // CrashError fires on exactly the same Nth charged write (and any ceiling
  // it races is resolved in per-op order too).
  if (faults_->crash_armed() && writes != 0 &&
      stats_.writes + writes >= fc.crash_after_writes)
    return BatchPlan::kPerOp;
  // All-or-nothing admission against the ceilings: project the post-batch
  // totals; if they land past a ceiling, reject before charging anything.
  // Both ceilings are monotone in (reads, writes), so a batch whose TOTAL
  // stays inside also stays inside at every intermediate op — bulk charging
  // cannot skip a would-have-fired check.
  IoStats projected = stats_;
  projected.reads += reads;
  projected.writes += writes;
  if (fc.max_cost != 0 && projected.cost(cfg_.write_cost) > fc.max_cost)
    throw BudgetExceeded(BudgetExceeded::Kind::kCost, fc.max_cost,
                         projected.cost(cfg_.write_cost), stats_);
  if (fc.max_ios != 0 && projected.total_ios() > fc.max_ios)
    throw BudgetExceeded(BudgetExceeded::Kind::kIos, fc.max_ios,
                         projected.total_ios(), stats_);
  return BatchPlan::kBulk;
}

void Machine::bulk_charge(std::span<const BlockOp> ops, std::uint64_t reads,
                          std::uint64_t writes, std::span<IoTicket> tickets) {
  stats_.reads += reads;
  stats_.writes += writes;
  for (std::uint32_t id : active_phases_) {
    IoStats& s = phase_totals_[id];
    s.reads += reads;
    s.writes += writes;
  }
  if (wear_ && writes != 0)
    for (const BlockOp& op : ops)
      if (op.kind == OpKind::kWrite) record_wear(op.array, op.block);
  if (trace_) {
    if (tickets.empty()) {
      for (const BlockOp& op : ops) trace_->add(op.kind, op.array, op.block);
    } else {
      for (std::size_t i = 0; i < ops.size(); ++i)
        tickets[i] = trace_->add(ops[i].kind, ops[i].array, ops[i].block);
    }
  } else {
    for (IoTicket& t : tickets) t = IoTicket{};
  }
  // plan_batch() proved the batch lands inside every ceiling, so this is a
  // no-throw re-validation keeping the watchdog's view of the counters
  // current.
  if (faults_) faults_->check_budget(stats_, cfg_.write_cost);
}

void Machine::per_op_submit(std::span<const BlockOp> ops,
                            std::span<IoTicket> tickets) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const IoTicket t = ops[i].kind == OpKind::kWrite
                           ? on_write(ops[i].array, ops[i].block)
                           : on_read(ops[i].array, ops[i].block);
    if (!tickets.empty()) tickets[i] = t;
  }
}

void Machine::submit(std::span<const BlockOp> ops, std::span<IoTicket> tickets) {
  validate_tickets(ops, tickets);
  if (ops.empty()) return;
  std::uint64_t writes = 0;
  for (const BlockOp& op : ops)
    writes += static_cast<std::uint64_t>(op.kind == OpKind::kWrite);
  const std::uint64_t reads = ops.size() - writes;
  if (faults_ && plan_batch(reads, writes) == BatchPlan::kPerOp) {
    per_op_submit(ops, tickets);
    return;
  }
  bulk_charge(ops, reads, writes, tickets);
}

Machine::WearStats Machine::wear_stats() const {
  WearStats ws;
  if (!wear_) return ws;
  std::uint64_t total = 0;
  for (const auto& blocks : *wear_) {
    for (std::uint64_t count : blocks) {
      if (count == 0) continue;
      ++ws.blocks_written;
      total += count;
      if (count > ws.max_writes) ws.max_writes = count;
    }
  }
  if (ws.blocks_written != 0)
    ws.mean_writes =
        static_cast<double>(total) / static_cast<double>(ws.blocks_written);
  return ws;
}

std::vector<Machine::ArrayWear> Machine::wear_by_array() const {
  std::vector<ArrayWear> out;
  if (!wear_) return out;
  for (std::size_t a = 0; a < wear_->size(); ++a) {
    const auto& blocks = (*wear_)[a];
    ArrayWear aw;
    aw.array = static_cast<std::uint32_t>(a);
    for (std::uint64_t count : blocks) {
      if (count == 0) continue;
      ++aw.blocks_written;
      aw.writes += count;
      if (count > aw.max_writes) aw.max_writes = count;
    }
    if (aw.blocks_written != 0) out.push_back(aw);
  }
  return out;
}

}  // namespace aem
