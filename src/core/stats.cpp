#include "core/stats.hpp"

namespace aem {

std::string to_string(const IoStats& s) {
  return "reads=" + std::to_string(s.reads) +
         " writes=" + std::to_string(s.writes);
}

}  // namespace aem
