#include "core/faults.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace aem {

namespace {

/// SplitMix64 finalizer: a high-quality 64-bit mix, the standard choice for
/// counter-based deterministic streams.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Probability -> threshold on a uniform 64-bit draw (r < thresh faults).
std::uint64_t rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(
      rate * static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
}

void check_rate(const char* name, double rate) {
  if (!(rate >= 0.0 && rate <= 1.0))
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransientRead: return "transient-read";
    case FaultKind::kSilentWrite: return "silent-write";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kRetiredBlock: return "retired-block";
  }
  return "?";
}

void FaultConfig::validate() const {
  check_rate("read_fault_rate", read_fault_rate);
  check_rate("silent_write_rate", silent_write_rate);
  check_rate("torn_write_rate", torn_write_rate);
  if (silent_write_rate + torn_write_rate > 1.0)
    throw std::invalid_argument(
        "FaultConfig: silent_write_rate + torn_write_rate must be <= 1");
  if (retry_backoff_base != 0 && retry_backoff_cap < retry_backoff_base)
    throw std::invalid_argument(
        "FaultConfig: retry_backoff_cap must be >= retry_backoff_base");
}

FaultConfig FaultConfig::from_env() { return from_env(FaultConfig{}); }

FaultConfig FaultConfig::from_env(FaultConfig base) {
  if (const char* rate = std::getenv("AEM_FAULT_RATE")) {
    char* end = nullptr;
    const double r = std::strtod(rate, &end);
    if (end == rate || !(r >= 0.0 && r <= 1.0))
      throw std::invalid_argument(std::string("AEM_FAULT_RATE: '") + rate +
                                  "' is not a probability in [0, 1]");
    base.read_fault_rate = r;
    base.silent_write_rate = r / 2;
    base.torn_write_rate = r / 2;
  }
  if (const char* seed = std::getenv("AEM_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long s = std::strtoull(seed, &end, 10);
    if (end == seed || *end != '\0')
      throw std::invalid_argument(std::string("AEM_FAULT_SEED: '") + seed +
                                  "' is not an unsigned integer");
    base.seed = s;
  }
  if (const char* crash = std::getenv("AEM_CRASH_AFTER_WRITES")) {
    char* end = nullptr;
    const unsigned long long c = std::strtoull(crash, &end, 10);
    // strtoull wraps a leading '-' to a huge value instead of failing.
    if (end == crash || *end != '\0' || crash[0] == '-')
      throw std::invalid_argument(std::string("AEM_CRASH_AFTER_WRITES: '") +
                                  crash + "' is not an unsigned integer");
    base.crash_after_writes = c;
  }
  return base;
}

BudgetExceeded::BudgetExceeded(Kind kind, std::uint64_t limit,
                               std::uint64_t observed, IoStats at)
    : std::runtime_error(
          std::string("budget exceeded: ") +
          (kind == Kind::kCost ? "cost Q = " : "total I/Os = ") +
          std::to_string(observed) + " > ceiling " + std::to_string(limit) +
          " (reads=" + std::to_string(at.reads) +
          " writes=" + std::to_string(at.writes) + ")"),
      kind_(kind),
      limit_(limit),
      observed_(observed),
      at_(at) {}

CrashError::CrashError(std::uint64_t after_writes, IoStats at)
    : std::runtime_error("power cut: crash point hit after " +
                         std::to_string(after_writes) +
                         " charged writes (reads=" + std::to_string(at.reads) +
                         " writes=" + std::to_string(at.writes) + ")"),
      after_writes_(after_writes),
      at_(at) {}

FaultError::FaultError(bool is_write, std::uint32_t array, std::uint64_t block,
                       std::size_t attempts, const std::string& detail)
    : std::runtime_error("unrecoverable " +
                         std::string(is_write ? "write" : "read") +
                         " fault: array " + std::to_string(array) + " block " +
                         std::to_string(block) + " after " +
                         std::to_string(attempts) + " attempt(s): " + detail),
      is_write_(is_write),
      array_(array),
      block_(block),
      attempts_(attempts) {}

std::uint64_t fault_checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

FaultPolicy::FaultPolicy(FaultConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  read_thresh_ = rate_to_threshold(cfg_.read_fault_rate);
  silent_thresh_ = rate_to_threshold(cfg_.silent_write_rate);
  torn_thresh_ = rate_to_threshold(cfg_.torn_write_rate);
  crash_arm_ = cfg_.crash_after_writes;
}

void FaultPolicy::reset() {
  counter_ = 0;
  stats_ = FaultStats{};
  writes_.clear();
  crash_arm_ = cfg_.crash_after_writes;
  crashes_fired_ = 0;
  retry_attempts_ = 0;
  backoff_ios_ = 0;
}

void FaultPolicy::fire_crash(const IoStats& at) {
  // One cut per arm: recovery code runs on the same machine afterwards and
  // must not be cut again at every subsequent write.  reset() re-arms.
  const std::uint64_t point = crash_arm_;
  crash_arm_ = 0;
  ++crashes_fired_;
  throw CrashError(point, at);
}

std::uint64_t FaultPolicy::draw(std::uint64_t salt) {
  return mix64(cfg_.seed ^ (++counter_ * 0xD1B54A32D192ED03ull) ^ salt);
}

bool FaultPolicy::draw_read_fault() {
  if (read_thresh_ == 0) return false;  // keeps the stream short when off
  const bool fault = draw(0x52454144 /* "READ" */) < read_thresh_;
  if (fault) ++stats_.read_faults;
  return fault;
}

FaultKind FaultPolicy::draw_write_fault() {
  if (silent_thresh_ == 0 && torn_thresh_ == 0) return FaultKind::kNone;
  const std::uint64_t r = draw(0x57524954 /* "WRIT" */);
  // One draw decides between the mutually exclusive write outcomes: the
  // [0, silent) band is silent corruption, [silent, silent+torn) is torn.
  if (r < silent_thresh_) {
    ++stats_.silent_write_faults;
    return FaultKind::kSilentWrite;
  }
  if (torn_thresh_ != 0 && r - silent_thresh_ < torn_thresh_) {
    ++stats_.torn_write_faults;
    return FaultKind::kTornWrite;
  }
  return FaultKind::kNone;
}

std::uint64_t FaultPolicy::draw_u64() { return draw(0x4D41534B /* "MASK" */); }

bool FaultPolicy::record_write(std::uint32_t array, std::uint64_t block) {
  if (cfg_.endurance == 0) return false;
  if (array >= writes_.size()) writes_.resize(array + 1);
  auto& blocks = writes_[array];
  if (block >= blocks.size()) blocks.resize(block + 1, 0);
  const std::uint64_t count = ++blocks[block];
  if (count == cfg_.endurance + 1) ++stats_.retired_blocks;
  if (count > cfg_.endurance) {
    ++stats_.retired_writes;
    return true;
  }
  return false;
}

bool FaultPolicy::retired(std::uint32_t array, std::uint64_t block) const {
  return cfg_.endurance != 0 &&
         lifetime_writes(array, block) > cfg_.endurance;
}

std::uint64_t FaultPolicy::lifetime_writes(std::uint32_t array,
                                           std::uint64_t block) const {
  if (array >= writes_.size()) return 0;
  const auto& blocks = writes_[array];
  return block < blocks.size() ? blocks[block] : 0;
}

void FaultPolicy::throw_budget(BudgetExceeded::Kind kind, std::uint64_t limit,
                               std::uint64_t observed, IoStats at) {
  throw BudgetExceeded(kind, limit, observed, at);
}

}  // namespace aem
