// Fault injection and endurance modelling for the AEM machine.
//
// The model charges omega per write *because* NVM cells wear out and writes
// can fail (Jacob & Sitchinava Section 1).  A FaultPolicy turns the
// simulator's perfect device into one that actually exhibits those failure
// modes, deterministically:
//
//  * transient read faults  — a read delivers corrupted data this one time;
//    the stored block is intact and a (charged) retry succeeds;
//  * silent write faults    — the write "succeeds" but the stored block is
//    corrupted; only verification (read-back or checksum) can tell;
//  * torn write faults      — only a prefix of the block is persisted, the
//    tail keeps its previous contents;
//  * endurance retirement   — after `endurance` lifetime writes a physical
//    block wears out permanently: further writes to it do not take effect
//    and the recovery layer must migrate the block to a spare (core/remap);
//  * budget ceilings        — hard caps on Q and on total I/Os that abort a
//    runaway computation with a structured BudgetExceeded instead of
//    running forever.
//
// Every fault decision is drawn from a counter-based SplitMix64 stream, so
// an identical (seed, config, program) triple reproduces the exact same
// fault schedule bit for bit — fault runs are as replayable as clean ones.
//
// The policy itself only *decides*; data corruption happens in ExtArray
// (core/ext_array.hpp), which owns the stored bytes, and the recovery layer
// there (checksums, verify-after-write, bounded retry, remap to spares)
// charges every retry through the normal Machine accounting path, so the
// omega-weighted price of robustness shows up in Q like any other I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/stats.hpp"

namespace aem {

/// What (if anything) the device does to one attempted operation.
enum class FaultKind : std::uint8_t {
  kNone,
  kTransientRead,  // delivered data corrupted; stored data intact
  kSilentWrite,    // stored data corrupted; write reports success
  kTornWrite,      // only a prefix of the block is persisted
  kRetiredBlock,   // block past its endurance budget; write does not take
};

const char* to_string(FaultKind k);

struct FaultConfig {
  /// Seed of the deterministic fault schedule.
  std::uint64_t seed = 1;

  /// Per-operation fault probabilities in [0, 1].  The two write rates are
  /// mutually exclusive outcomes of one draw, so their sum must be <= 1.
  double read_fault_rate = 0.0;
  double silent_write_rate = 0.0;
  double torn_write_rate = 0.0;

  /// Lifetime writes a physical block endures before permanent retirement.
  /// 0 = unlimited (no retirement).
  std::uint64_t endurance = 0;

  /// Spare physical blocks available per array for wear-leveling remap of
  /// retired blocks.  0 = no spares (a retired block is unrecoverable).
  std::size_t spare_blocks = 0;

  /// Bound on recovery retries per logical operation (per physical block:
  /// a remap to a fresh spare resets the count).
  std::size_t max_retries = 4;

  /// Read back every write (one charged read per attempt) and rewrite on
  /// mismatch.  Off = silent faults stay silent.
  bool verify_writes = true;

  /// Maintain per-block checksums and verify every delivered read block,
  /// retrying (charged) on mismatch.
  bool checksum_reads = true;

  /// Hard ceiling on Q = Q_r + omega*Q_w; exceeding it throws
  /// BudgetExceeded from the machine.  0 = unlimited.
  std::uint64_t max_cost = 0;
  /// Hard ceiling on total I/Os (reads + writes).  0 = unlimited.
  std::uint64_t max_ios = 0;

  /// Deterministic power-cut point: once the machine's charged write
  /// counter reaches this value, the policy throws CrashError from the
  /// write hot path.  The Nth write is charged (and, on the plain path,
  /// persisted) before the cut lands, so the crash point is reproducible
  /// to the exact block transfer.  One-shot: firing disarms the schedule
  /// until reset().  0 = unarmed.
  std::uint64_t crash_after_writes = 0;

  /// Deterministic exponential backoff charged before retry attempt k of
  /// the recovery layer: min(retry_backoff_base << (k-1),
  /// retry_backoff_cap) poll reads, charged through the normal machine
  /// path.  0 (the default) charges nothing — retries stay byte-identical
  /// to the pre-reliability-layer behavior.
  std::uint64_t retry_backoff_base = 0;
  std::uint64_t retry_backoff_cap = 64;

  /// Throws std::invalid_argument on out-of-range rates.
  void validate() const;

  /// `base` with AEM_FAULT_RATE / AEM_FAULT_SEED / AEM_CRASH_AFTER_WRITES
  /// environment overrides applied (used by CI to run the whole test suite
  /// under a nonzero default fault rate, and to cut builds at a chosen
  /// write).  AEM_FAULT_RATE=r sets read_fault_rate = r and splits r
  /// evenly between the two write fault kinds.
  static FaultConfig from_env(FaultConfig base);
  static FaultConfig from_env();
};

/// Bounded-retry / deterministic-backoff schedule shared by every retry
/// loop in the library (ExtArray read checksums and verify-after-write,
/// BlockCache flush write-backs — both derive theirs from
/// FaultPolicy::retry() — and ShardedMachine outage waits).  Attempt
/// numbering: the initial try is attempt 0; retry k (1-based) is preceded
/// by backoff(k) charged poll I/Os.
struct RetryPolicy {
  /// Retries after the initial attempt; attempt >= max_retries is
  /// exhausted (so a loop performs at most max_retries + 1 attempts).
  std::size_t max_retries = 4;

  /// Polls charged before retry k: min(backoff_base << (k-1), backoff_cap).
  /// 0 = no backoff charges.
  std::uint64_t backoff_base = 0;
  std::uint64_t backoff_cap = 64;

  bool exhausted(std::size_t attempt) const { return attempt >= max_retries; }

  /// Backoff (in charged poll I/Os) before retry `attempt` (1-based).
  std::uint64_t backoff(std::size_t attempt) const {
    if (backoff_base == 0 || attempt == 0) return 0;
    const std::size_t shift = attempt - 1;
    if (shift >= 64 || (backoff_base << shift) >> shift != backoff_base)
      return backoff_cap;
    const std::uint64_t v = backoff_base << shift;
    return v < backoff_cap ? v : backoff_cap;
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Counters of everything the fault/recovery machinery did.  Flows into the
/// metrics snapshot (schema aem.machine.metrics/v8, docs/MODEL.md sec. 10).
struct FaultStats {
  // injected faults
  std::uint64_t read_faults = 0;
  std::uint64_t silent_write_faults = 0;
  std::uint64_t torn_write_faults = 0;
  std::uint64_t retired_writes = 0;  // write attempts on retired blocks

  // recovery activity (each retry is also charged in the machine's IoStats)
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t verify_failures = 0;    // verify-after-write mismatches
  std::uint64_t checksum_failures = 0;  // read-side checksum mismatches
  std::uint64_t retired_blocks = 0;     // blocks past the endurance budget
  std::uint64_t remaps = 0;             // retired blocks migrated to spares

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Machine-level recovery accounting: every recovery pass (e.g.
/// KvStore::recover()) notes its full charged bill on the machine it ran
/// on, and the totals surface in the metrics snapshot's "reliability"
/// section (schema v7).  The underlying I/Os are also counted in the
/// machine's IoStats like any other charged transfer — this is
/// attribution, not double-charging.
struct RecoveryStats {
  std::uint64_t scans = 0;   // recovery passes run
  std::uint64_t reads = 0;   // charged reads across all passes
  std::uint64_t writes = 0;  // charged writes across all passes
  std::uint64_t cost = 0;    // Q = reads + omega*writes across all passes
  friend bool operator==(const RecoveryStats&, const RecoveryStats&) = default;
};

/// Thrown by the machine when a configured cost / I/O ceiling is exceeded.
/// The machine's counters remain valid and queryable, so the catcher can
/// snapshot the full state at the point of abort.
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind { kCost, kIos };

  BudgetExceeded(Kind kind, std::uint64_t limit, std::uint64_t observed,
                 IoStats at);

  Kind kind() const { return kind_; }
  std::uint64_t limit() const { return limit_; }
  std::uint64_t observed() const { return observed_; }
  /// The machine's I/O counters at the moment of the abort (the op that
  /// crossed the ceiling is included).
  IoStats at() const { return at_; }

 private:
  Kind kind_;
  std::uint64_t limit_;
  std::uint64_t observed_;
  IoStats at_;
};

/// Thrown from the write hot path when the configured power-cut point
/// (FaultConfig::crash_after_writes) is reached: the simulated machine
/// loses power after exactly `after_writes()` charged writes.  Host-side
/// state of the interrupted computation must be considered lost; external
/// state persists only up to the crash discipline of the writing layer
/// (KvStore's manifest, ExtArray checksums).  The machine's counters stay
/// valid and include the cut write.
class CrashError : public std::runtime_error {
 public:
  CrashError(std::uint64_t after_writes, IoStats at);

  /// The configured crash point (charged writes at the cut).
  std::uint64_t after_writes() const { return after_writes_; }
  /// The machine's I/O counters at the moment of the cut.
  IoStats at() const { return at_; }

 private:
  std::uint64_t after_writes_;
  IoStats at_;
};

/// Thrown by the recovery layer when a block stays bad after the bounded
/// retries (uncorrectable corruption, or a retired block with no spare).
class FaultError : public std::runtime_error {
 public:
  FaultError(bool is_write, std::uint32_t array, std::uint64_t block,
             std::size_t attempts, const std::string& detail);

  bool is_write() const { return is_write_; }
  std::uint32_t array() const { return array_; }
  std::uint64_t block() const { return block_; }
  std::size_t attempts() const { return attempts_; }

 private:
  bool is_write_;
  std::uint32_t array_;
  std::uint64_t block_;
  std::size_t attempts_;
};

/// FNV-1a 64 over a byte range — the per-block checksum of the recovery
/// layer (exposed for tests).
std::uint64_t fault_checksum(const void* data, std::size_t bytes);

/// The seed-driven fault schedule plus endurance bookkeeping.  Installed on
/// a Machine (Machine::install_faults); consulted by ExtArray on every
/// block transfer.  Decisions are drawn from a counter-based stream, so the
/// schedule is a pure function of (seed, sequence of draws).
class FaultPolicy {
 public:
  explicit FaultPolicy(FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }
  const FaultStats& stats() const { return stats_; }

  /// Rewinds the schedule and clears all counters, wear counts, and
  /// retirements — the state a fresh policy with the same config has.
  void reset();

  /// True if any fault kind can actually fire (rates or endurance set).
  /// False for a pure budget-watchdog policy.  A crash-only schedule does
  /// NOT count: a power cut interrupts the program but never corrupts a
  /// completed transfer, so it must not switch ExtArray onto the
  /// checksummed path (whose extra verify charges would break the
  /// crash-unarmed byte-identity guarantee).
  bool injects_faults() const {
    return read_thresh_ != 0 || silent_thresh_ != 0 || torn_thresh_ != 0 ||
           cfg_.endurance != 0;
  }
  bool has_ceiling() const { return cfg_.max_cost != 0 || cfg_.max_ios != 0; }

  /// The retry/backoff schedule every recovery loop on this machine obeys
  /// (ExtArray read/write retries, cache flush write-backs).
  RetryPolicy retry() const {
    return RetryPolicy{cfg_.max_retries, cfg_.retry_backoff_base,
                       cfg_.retry_backoff_cap};
  }

  /// True while the power-cut schedule is armed and has not fired yet.
  bool crash_armed() const { return crash_arm_ != 0; }
  /// Crash points hit since construction / reset().
  std::uint64_t crashes_fired() const { return crashes_fired_; }

  // --- schedule draws (each advances the deterministic stream) ------------
  bool draw_read_fault();
  /// kNone, kSilentWrite, or kTornWrite (one draw decides).
  FaultKind draw_write_fault();
  /// Raw draw used to pick corruption offsets / torn prefix lengths.
  std::uint64_t draw_u64();

  // --- endurance ----------------------------------------------------------
  /// Records one lifetime write to a physical block and returns true if the
  /// block is (now or already) retired.
  bool record_write(std::uint32_t array, std::uint64_t block);
  bool retired(std::uint32_t array, std::uint64_t block) const;
  /// Lifetime write count of a physical block.
  std::uint64_t lifetime_writes(std::uint32_t array, std::uint64_t block) const;

  // --- recovery counters (bumped by ExtArray's recovery layer) ------------
  void note_read_retry() { ++stats_.read_retries; }
  void note_write_retry() { ++stats_.write_retries; }
  void note_verify_failure() { ++stats_.verify_failures; }
  void note_checksum_failure() { ++stats_.checksum_failures; }
  void note_remap() { ++stats_.remaps; }
  /// One backoff wait of `polls` charged poll I/Os (the polls themselves go
  /// through the normal machine path; this only counts them for metrics).
  void note_backoff(std::uint64_t polls) {
    ++retry_attempts_;
    backoff_ios_ += polls;
  }
  std::uint64_t retry_attempts() const { return retry_attempts_; }
  std::uint64_t backoff_ios() const { return backoff_ios_; }

  // --- ceilings + crash schedule (machine hot path) -----------------------
  /// Throws BudgetExceeded if the counters are past a configured ceiling,
  /// or CrashError if the armed power-cut point has been reached (the
  /// schedule disarms itself as it fires — one cut per arm).
  void check_budget(const IoStats& s, std::uint64_t omega) {
    if (cfg_.max_cost != 0 && s.cost(omega) > cfg_.max_cost)
      throw_budget(BudgetExceeded::Kind::kCost, cfg_.max_cost, s.cost(omega),
                   s);
    if (cfg_.max_ios != 0 && s.total_ios() > cfg_.max_ios)
      throw_budget(BudgetExceeded::Kind::kIos, cfg_.max_ios, s.total_ios(), s);
    if (crash_arm_ != 0 && s.writes >= crash_arm_) fire_crash(s);
  }

 private:
  [[noreturn]] static void throw_budget(BudgetExceeded::Kind kind,
                                        std::uint64_t limit,
                                        std::uint64_t observed, IoStats at);
  [[noreturn]] void fire_crash(const IoStats& at);

  std::uint64_t draw(std::uint64_t salt);

  FaultConfig cfg_;
  // Rates pre-scaled to uint64 thresholds: a draw r faults iff r < thresh.
  std::uint64_t read_thresh_ = 0;
  std::uint64_t silent_thresh_ = 0;
  std::uint64_t torn_thresh_ = 0;
  std::uint64_t counter_ = 0;
  std::uint64_t crash_arm_ = 0;  // remaining power-cut point; 0 = unarmed
  std::uint64_t crashes_fired_ = 0;
  std::uint64_t retry_attempts_ = 0;  // backoff waits performed
  std::uint64_t backoff_ios_ = 0;     // charged backoff poll I/Os
  FaultStats stats_;
  // writes_[array][block] = lifetime write count (dense, like the machine's
  // wear histogram; spare blocks get ids just past the logical range).
  std::vector<std::vector<std::uint64_t>> writes_;
};

}  // namespace aem
