// Fault injection and endurance modelling for the AEM machine.
//
// The model charges omega per write *because* NVM cells wear out and writes
// can fail (Jacob & Sitchinava Section 1).  A FaultPolicy turns the
// simulator's perfect device into one that actually exhibits those failure
// modes, deterministically:
//
//  * transient read faults  — a read delivers corrupted data this one time;
//    the stored block is intact and a (charged) retry succeeds;
//  * silent write faults    — the write "succeeds" but the stored block is
//    corrupted; only verification (read-back or checksum) can tell;
//  * torn write faults      — only a prefix of the block is persisted, the
//    tail keeps its previous contents;
//  * endurance retirement   — after `endurance` lifetime writes a physical
//    block wears out permanently: further writes to it do not take effect
//    and the recovery layer must migrate the block to a spare (core/remap);
//  * budget ceilings        — hard caps on Q and on total I/Os that abort a
//    runaway computation with a structured BudgetExceeded instead of
//    running forever.
//
// Every fault decision is drawn from a counter-based SplitMix64 stream, so
// an identical (seed, config, program) triple reproduces the exact same
// fault schedule bit for bit — fault runs are as replayable as clean ones.
//
// The policy itself only *decides*; data corruption happens in ExtArray
// (core/ext_array.hpp), which owns the stored bytes, and the recovery layer
// there (checksums, verify-after-write, bounded retry, remap to spares)
// charges every retry through the normal Machine accounting path, so the
// omega-weighted price of robustness shows up in Q like any other I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/stats.hpp"

namespace aem {

/// What (if anything) the device does to one attempted operation.
enum class FaultKind : std::uint8_t {
  kNone,
  kTransientRead,  // delivered data corrupted; stored data intact
  kSilentWrite,    // stored data corrupted; write reports success
  kTornWrite,      // only a prefix of the block is persisted
  kRetiredBlock,   // block past its endurance budget; write does not take
};

const char* to_string(FaultKind k);

struct FaultConfig {
  /// Seed of the deterministic fault schedule.
  std::uint64_t seed = 1;

  /// Per-operation fault probabilities in [0, 1].  The two write rates are
  /// mutually exclusive outcomes of one draw, so their sum must be <= 1.
  double read_fault_rate = 0.0;
  double silent_write_rate = 0.0;
  double torn_write_rate = 0.0;

  /// Lifetime writes a physical block endures before permanent retirement.
  /// 0 = unlimited (no retirement).
  std::uint64_t endurance = 0;

  /// Spare physical blocks available per array for wear-leveling remap of
  /// retired blocks.  0 = no spares (a retired block is unrecoverable).
  std::size_t spare_blocks = 0;

  /// Bound on recovery retries per logical operation (per physical block:
  /// a remap to a fresh spare resets the count).
  std::size_t max_retries = 4;

  /// Read back every write (one charged read per attempt) and rewrite on
  /// mismatch.  Off = silent faults stay silent.
  bool verify_writes = true;

  /// Maintain per-block checksums and verify every delivered read block,
  /// retrying (charged) on mismatch.
  bool checksum_reads = true;

  /// Hard ceiling on Q = Q_r + omega*Q_w; exceeding it throws
  /// BudgetExceeded from the machine.  0 = unlimited.
  std::uint64_t max_cost = 0;
  /// Hard ceiling on total I/Os (reads + writes).  0 = unlimited.
  std::uint64_t max_ios = 0;

  /// Throws std::invalid_argument on out-of-range rates.
  void validate() const;

  /// `base` with AEM_FAULT_RATE / AEM_FAULT_SEED environment overrides
  /// applied (used by CI to run the whole test suite under a nonzero
  /// default fault rate).  AEM_FAULT_RATE=r sets read_fault_rate = r and
  /// splits r evenly between the two write fault kinds.
  static FaultConfig from_env(FaultConfig base);
  static FaultConfig from_env();
};

/// Counters of everything the fault/recovery machinery did.  Flows into the
/// metrics snapshot (schema aem.machine.metrics/v5, docs/MODEL.md sec. 10).
struct FaultStats {
  // injected faults
  std::uint64_t read_faults = 0;
  std::uint64_t silent_write_faults = 0;
  std::uint64_t torn_write_faults = 0;
  std::uint64_t retired_writes = 0;  // write attempts on retired blocks

  // recovery activity (each retry is also charged in the machine's IoStats)
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t verify_failures = 0;    // verify-after-write mismatches
  std::uint64_t checksum_failures = 0;  // read-side checksum mismatches
  std::uint64_t retired_blocks = 0;     // blocks past the endurance budget
  std::uint64_t remaps = 0;             // retired blocks migrated to spares

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Thrown by the machine when a configured cost / I/O ceiling is exceeded.
/// The machine's counters remain valid and queryable, so the catcher can
/// snapshot the full state at the point of abort.
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind { kCost, kIos };

  BudgetExceeded(Kind kind, std::uint64_t limit, std::uint64_t observed,
                 IoStats at);

  Kind kind() const { return kind_; }
  std::uint64_t limit() const { return limit_; }
  std::uint64_t observed() const { return observed_; }
  /// The machine's I/O counters at the moment of the abort (the op that
  /// crossed the ceiling is included).
  IoStats at() const { return at_; }

 private:
  Kind kind_;
  std::uint64_t limit_;
  std::uint64_t observed_;
  IoStats at_;
};

/// Thrown by the recovery layer when a block stays bad after the bounded
/// retries (uncorrectable corruption, or a retired block with no spare).
class FaultError : public std::runtime_error {
 public:
  FaultError(bool is_write, std::uint32_t array, std::uint64_t block,
             std::size_t attempts, const std::string& detail);

  bool is_write() const { return is_write_; }
  std::uint32_t array() const { return array_; }
  std::uint64_t block() const { return block_; }
  std::size_t attempts() const { return attempts_; }

 private:
  bool is_write_;
  std::uint32_t array_;
  std::uint64_t block_;
  std::size_t attempts_;
};

/// FNV-1a 64 over a byte range — the per-block checksum of the recovery
/// layer (exposed for tests).
std::uint64_t fault_checksum(const void* data, std::size_t bytes);

/// The seed-driven fault schedule plus endurance bookkeeping.  Installed on
/// a Machine (Machine::install_faults); consulted by ExtArray on every
/// block transfer.  Decisions are drawn from a counter-based stream, so the
/// schedule is a pure function of (seed, sequence of draws).
class FaultPolicy {
 public:
  explicit FaultPolicy(FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }
  const FaultStats& stats() const { return stats_; }

  /// Rewinds the schedule and clears all counters, wear counts, and
  /// retirements — the state a fresh policy with the same config has.
  void reset();

  /// True if any fault kind can actually fire (rates or endurance set).
  /// False for a pure budget-watchdog policy.
  bool injects_faults() const {
    return read_thresh_ != 0 || silent_thresh_ != 0 || torn_thresh_ != 0 ||
           cfg_.endurance != 0;
  }
  bool has_ceiling() const { return cfg_.max_cost != 0 || cfg_.max_ios != 0; }

  // --- schedule draws (each advances the deterministic stream) ------------
  bool draw_read_fault();
  /// kNone, kSilentWrite, or kTornWrite (one draw decides).
  FaultKind draw_write_fault();
  /// Raw draw used to pick corruption offsets / torn prefix lengths.
  std::uint64_t draw_u64();

  // --- endurance ----------------------------------------------------------
  /// Records one lifetime write to a physical block and returns true if the
  /// block is (now or already) retired.
  bool record_write(std::uint32_t array, std::uint64_t block);
  bool retired(std::uint32_t array, std::uint64_t block) const;
  /// Lifetime write count of a physical block.
  std::uint64_t lifetime_writes(std::uint32_t array, std::uint64_t block) const;

  // --- recovery counters (bumped by ExtArray's recovery layer) ------------
  void note_read_retry() { ++stats_.read_retries; }
  void note_write_retry() { ++stats_.write_retries; }
  void note_verify_failure() { ++stats_.verify_failures; }
  void note_checksum_failure() { ++stats_.checksum_failures; }
  void note_remap() { ++stats_.remaps; }

  // --- ceilings (machine hot path) ----------------------------------------
  /// Throws BudgetExceeded if the counters are past a configured ceiling.
  void check_budget(const IoStats& s, std::uint64_t omega) const {
    if (cfg_.max_cost != 0 && s.cost(omega) > cfg_.max_cost)
      throw_budget(BudgetExceeded::Kind::kCost, cfg_.max_cost, s.cost(omega),
                   s);
    if (cfg_.max_ios != 0 && s.total_ios() > cfg_.max_ios)
      throw_budget(BudgetExceeded::Kind::kIos, cfg_.max_ios, s.total_ios(), s);
  }

 private:
  [[noreturn]] static void throw_budget(BudgetExceeded::Kind kind,
                                        std::uint64_t limit,
                                        std::uint64_t observed, IoStats at);

  std::uint64_t draw(std::uint64_t salt);

  FaultConfig cfg_;
  // Rates pre-scaled to uint64 thresholds: a draw r faults iff r < thresh.
  std::uint64_t read_thresh_ = 0;
  std::uint64_t silent_thresh_ = 0;
  std::uint64_t torn_thresh_ = 0;
  std::uint64_t counter_ = 0;
  FaultStats stats_;
  // writes_[array][block] = lifetime write count (dense, like the machine's
  // wear histogram; spare blocks get ids just past the logical range).
  std::vector<std::vector<std::uint64_t>> writes_;
};

}  // namespace aem
