#include "core/sharding.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace aem {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kRoundRobin: return "round-robin";
    case Placement::kRange: return "range";
  }
  return "?";
}

void ShardConfig::validate() const {
  frontend.validate();
  if (devices.empty())
    throw std::invalid_argument("ShardConfig: at least one device required");
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const Config& dev = devices[d];
    try {
      dev.validate();
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("ShardConfig: device " + std::to_string(d) +
                                  ": " + e.what());
    }
    if (dev.cache.capacity_blocks != 0)
      throw std::invalid_argument(
          "ShardConfig: device " + std::to_string(d) +
          " configures a cache; caching lives above placement (put it on the "
          "frontend Config)");
    if (frontend.block_elems % dev.block_elems != 0)
      throw std::invalid_argument(
          "ShardConfig: device " + std::to_string(d) + " block size " +
          std::to_string(dev.block_elems) +
          " does not divide the frontend block size " +
          std::to_string(frontend.block_elems));
  }
  if (range_chunk_blocks == 0)
    throw std::invalid_argument("ShardConfig: range_chunk_blocks must be >= 1");
  std::vector<bool> seen(devices.size(), false);
  for (const OutageSpec& o : outages) {
    if (o.device >= devices.size())
      throw std::invalid_argument("ShardConfig: outage names device " +
                                  std::to_string(o.device) + " but only " +
                                  std::to_string(devices.size()) + " exist");
    if (seen[o.device])
      throw std::invalid_argument(
          "ShardConfig: more than one outage window for device " +
          std::to_string(o.device));
    seen[o.device] = true;
    if (o.up_at != 0 && o.up_at <= o.down_at)
      throw std::invalid_argument(
          "ShardConfig: outage window for device " + std::to_string(o.device) +
          " ends at op " + std::to_string(o.up_at) +
          ", not after it starts at op " + std::to_string(o.down_at));
  }
  if (outage_retry.backoff_base != 0 &&
      outage_retry.backoff_cap < outage_retry.backoff_base)
    throw std::invalid_argument(
        "ShardConfig: outage_retry.backoff_cap must be >= backoff_base");
}

namespace {

// ShardConfig::validate() must run BEFORE the Machine base is constructed
// (Machine(frontend) would accept a frontend whose device list is garbage);
// routing it through this helper sequences the check into the base
// initializer.
const Config& validated_frontend(const ShardConfig& cfg) {
  cfg.validate();
  return cfg.frontend;
}

}  // namespace

ShardedMachine::ShardedMachine(ShardConfig cfg)
    : Machine(validated_frontend(cfg)), scfg_(std::move(cfg)) {
  devices_.reserve(scfg_.devices.size());
  amp_.reserve(scfg_.devices.size());
  for (const Config& dev : scfg_.devices) {
    devices_.push_back(std::make_unique<Machine>(dev));
    amp_.push_back(scfg_.frontend.block_elems / dev.block_elems);
  }
  div_devices_ = util::FastDiv64(devices_.size());
  div_chunk_ = util::FastDiv64(scfg_.range_chunk_blocks);
  batch_by_device_.resize(devices_.size());
  down_at_.assign(devices_.size(), 0);
  up_at_.assign(devices_.size(), 0);
  queued_.resize(devices_.size());
  ostats_.assign(devices_.size(), OutageStats{});
  for (const OutageSpec& o : scfg_.outages) {
    down_at_[o.device] = o.down_at;
    up_at_[o.device] = o.up_at;
    if (o.down_at != 0) outages_armed_ = true;
  }
}

bool ShardedMachine::device_down(std::size_t d) const {
  const std::uint64_t down = down_at_.at(d);
  if (down == 0) return false;
  const std::uint64_t clock = op_clock();
  return clock >= down && (up_at_[d] == 0 || clock < up_at_[d]);
}

void ShardedMachine::drain_recovered() {
  if (!outages_armed_) return;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (queued_[d].empty() || device_down(d)) continue;
    // FIFO replay at device prices.  Device charges never advance the
    // frontend op clock, so the window state is stable across the drain
    // and the replay is deterministic for any --jobs.
    std::vector<QueuedWrite> q;
    q.swap(queued_[d]);
    for (const QueuedWrite& w : q) devices_[d]->on_write(w.array, w.native);
    ostats_[d].drained_writes += q.size();
  }
}

void ShardedMachine::wait_for_device(std::size_t d, std::uint32_t array,
                                     std::uint64_t block) {
  const RetryPolicy& retry = scfg_.outage_retry;
  OutageStats& os = ostats_[d];
  std::size_t attempt = 0;
  while (device_down(d)) {
    if (retry.exhausted(attempt)) {
      ++os.failed_reads;
      throw FaultError(/*is_write=*/false, array, block, attempt + 1,
                       "device " + std::to_string(d) +
                           " is down and its outage window did not close "
                           "within the retry budget");
    }
    ++attempt;
    // Each wait round charges frontend poll reads (at least one, so the
    // clock always advances toward up_at).  The polls go through the plain
    // Machine path: phase-attributed, traced, and — with a cost or I/O
    // ceiling configured — subject to BudgetExceeded, which turns an
    // over-long degraded interval into admission control, not a crash.
    std::uint64_t polls = retry.backoff(attempt);
    if (polls == 0) polls = 1;
    ++os.wait_rounds;
    os.backoff_ios += polls;
    for (std::uint64_t i = 0; i < polls; ++i) Machine::on_read(array, block);
  }
  // The device is back; settle its deferred writes before serving reads
  // that may depend on them.
  drain_recovered();
}

ShardedMachine::Route ShardedMachine::route(std::uint64_t block) const {
  if (devices_.size() == 1) return Route{0, block};
  switch (scfg_.placement) {
    case Placement::kRoundRobin: {
      const auto qr = div_devices_.divmod(block);
      return Route{static_cast<std::size_t>(qr.rem), qr.quot};
    }
    case Placement::kRange: {
      const auto c = static_cast<std::uint64_t>(scfg_.range_chunk_blocks);
      const auto chunk = div_chunk_.divmod(block);  // quot = chunk, rem = off
      const auto dev = div_devices_.divmod(chunk.quot);
      return Route{static_cast<std::size_t>(dev.rem),
                   dev.quot * c + chunk.rem};
    }
  }
  return Route{0, block};
}

IoStats ShardedMachine::devices_stats() const {
  IoStats total;
  for (const auto& dev : devices_) total += dev->stats();
  return total;
}

std::uint64_t ShardedMachine::devices_cost() const {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 0;
  for (const auto& dev : devices_) {
    if (__builtin_add_overflow(total, dev->cost(), &total)) return kMax;
  }
  return total;
}

double ShardedMachine::wear_spread() const {
  std::uint64_t total = 0;
  std::uint64_t max_writes = 0;
  for (const auto& dev : devices_) {
    const std::uint64_t w = dev->stats().writes;
    total += w;
    if (w > max_writes) max_writes = w;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(devices_.size());
  return static_cast<double>(max_writes) / mean;
}

void ShardedMachine::enable_device_wear_tracking() {
  for (auto& dev : devices_) dev->enable_wear_tracking();
}

std::uint32_t ShardedMachine::register_array(std::string name) {
  // Mirror the registration on every device so array ids line up across the
  // whole array (devices receive arrays only through this override).
  for (auto& dev : devices_) dev->register_array(name);
  return Machine::register_array(std::move(name));
}

void ShardedMachine::reset_stats() {
  Machine::reset_stats();
  for (auto& dev : devices_) dev->reset_stats();
  // The op clock restarts, so the outage windows re-arm; queued-but-
  // undrained deferred writes belong to the discarded measurement and are
  // dropped with it (drain_recovered() first if they must be settled).
  for (auto& q : queued_) q.clear();
  ostats_.assign(devices_.size(), OutageStats{});
}

IoTicket ShardedMachine::on_read(std::uint32_t array, std::uint64_t block) {
  // Facade first: frontend accounting must be byte-identical to a plain
  // Machine, including the relative order of a budget-ceiling throw and the
  // device-side charges (a frontend ceiling fires before any device sees
  // the transfer, exactly as a plain machine would fire before the device
  // bus existed).
  const IoTicket ticket = Machine::on_read(array, block);
  const Route r = route(block);
  if (outages_armed_) {
    drain_recovered();
    if (device_down(r.device)) wait_for_device(r.device, array, block);
  }
  Machine& dev = *devices_[r.device];
  const std::uint64_t base = r.local * amp_[r.device];
  for (std::size_t j = 0; j < amp_[r.device]; ++j)
    dev.on_read(array, base + j);
  return ticket;
}

void ShardedMachine::submit(std::span<const BlockOp> ops,
                            std::span<IoTicket> tickets) {
  validate_tickets(ops, tickets);
  if (ops.empty()) return;
  std::uint64_t writes = 0;
  for (const BlockOp& op : ops)
    writes += static_cast<std::uint64_t>(op.kind == OpKind::kWrite);
  const std::uint64_t reads = ops.size() - writes;
  // Outage windows are evaluated against the frontend op clock between
  // transfers, and an in-batch crash point must cut on its exact write:
  // both degrade to the per-op loop (the full sharded on_read/on_write
  // path, so waits, deferred writes, and drains behave identically).
  // plan_batch() itself rejects a ceiling-crossing batch up front, before
  // the frontend or any device has charged an op.
  if (outages_armed_ ||
      (faults() && plan_batch(reads, writes) == BatchPlan::kPerOp)) {
    per_op_submit(ops, tickets);
    return;
  }
  // Facade first (one bulk charge — byte-identical counters/trace to the
  // per-op path), then the whole batch grouped by route(): one member
  // submit per touched device instead of one virtual call per native op.
  bulk_charge(ops, reads, writes, tickets);
  for (const BlockOp& op : ops) {
    const Route r = route(op.block);
    const std::uint64_t base = r.local * amp_[r.device];
    auto& dev_ops = batch_by_device_[r.device];
    for (std::size_t j = 0; j < amp_[r.device]; ++j)
      dev_ops.push_back(BlockOp{op.kind, op.array, base + j});
  }
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (batch_by_device_[d].empty()) continue;
    try {
      devices_[d]->submit(batch_by_device_[d]);
    } catch (...) {
      // A device-side throw (its own ceiling/crash schedule) must not leave
      // stale native ops behind for the next batch.
      for (auto& q : batch_by_device_) q.clear();
      throw;
    }
    batch_by_device_[d].clear();
  }
}

IoTicket ShardedMachine::on_write(std::uint32_t array, std::uint64_t block) {
  const IoTicket ticket = Machine::on_write(array, block);
  const Route r = route(block);
  if (outages_armed_) {
    drain_recovered();
    if (device_down(r.device)) {
      // The logical write is accepted (the frontend charged it — the
      // algorithm's Q is outage-independent); its native device transfers
      // are deferred until the device recovers.
      const std::uint64_t base = r.local * amp_[r.device];
      auto& q = queued_[r.device];
      for (std::size_t j = 0; j < amp_[r.device]; ++j)
        q.push_back(QueuedWrite{array, base + j});
      ostats_[r.device].queued_writes += amp_[r.device];
      return ticket;
    }
  }
  Machine& dev = *devices_[r.device];
  const std::uint64_t base = r.local * amp_[r.device];
  for (std::size_t j = 0; j < amp_[r.device]; ++j)
    dev.on_write(array, base + j);
  return ticket;
}

}  // namespace aem
