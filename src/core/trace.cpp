#include "core/trace.hpp"

#include <cassert>

namespace aem {

IoTicket Trace::add(OpKind kind, std::uint32_t array, std::uint64_t block) {
  ops_.push_back(TraceOp{kind, array, block, {}, {}});
  return IoTicket{ops_.size() - 1};
}

void Trace::set_atoms(IoTicket t, std::vector<std::uint64_t> atoms) {
  assert(t.valid() && t.index < ops_.size());
  assert(ops_[t.index].kind == OpKind::kWrite);
  ops_[t.index].atoms = std::move(atoms);
}

void Trace::mark_used(IoTicket t, std::uint64_t id) {
  assert(t.valid() && t.index < ops_.size());
  assert(ops_[t.index].kind == OpKind::kRead);
  ops_[t.index].used.push_back(id);
}

IoStats Trace::stats() const {
  IoStats s;
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kRead) {
      ++s.reads;
    } else {
      ++s.writes;
    }
  }
  return s;
}

std::uint64_t Trace::cost(std::uint64_t omega) const {
  std::uint64_t q = 0;
  for (const auto& op : ops_) q += op.cost(omega);
  return q;
}

}  // namespace aem
