// I/O counters for the AEM machine.
#pragma once

#include <cstdint>
#include <string>

namespace aem {

/// Read/write block-transfer counts.  The AEM cost of a computation with
/// these counts is reads + omega * writes (Section 1 of the paper).
struct IoStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  /// Q = Q_r + omega * Q_w.
  std::uint64_t cost(std::uint64_t omega) const { return reads + omega * writes; }

  std::uint64_t total_ios() const { return reads + writes; }

  IoStats& operator+=(const IoStats& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  /// Counter delta (requires *this >= o component-wise).
  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    return IoStats{a.reads - b.reads, a.writes - b.writes};
  }

  friend bool operator==(const IoStats&, const IoStats&) = default;
};

/// "reads=R writes=W" human-readable form.
std::string to_string(const IoStats& s);

}  // namespace aem
