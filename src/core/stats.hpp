// I/O counters for the AEM machine.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace aem {

/// Read/write block-transfer counts.  The AEM cost of a computation with
/// these counts is reads + omega * writes (Section 1 of the paper).
struct IoStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  /// Q = Q_r + omega * Q_w, saturating at UINT64_MAX.  Large (N, omega)
  /// sweeps (omega in the hundreds, counters in the billions) can push the
  /// product past 64 bits; a silently wrapped cost would fake a *cheaper*
  /// computation, so saturation is the safe failure mode.
  std::uint64_t cost(std::uint64_t omega) const {
    std::uint64_t weighted = 0;
    if (__builtin_mul_overflow(writes, omega, &weighted))
      return std::numeric_limits<std::uint64_t>::max();
    std::uint64_t q = 0;
    if (__builtin_add_overflow(reads, weighted, &q))
      return std::numeric_limits<std::uint64_t>::max();
    return q;
  }

  /// reads + writes, saturating at UINT64_MAX (same rationale as cost()).
  std::uint64_t total_ios() const {
    std::uint64_t t = 0;
    if (__builtin_add_overflow(reads, writes, &t))
      return std::numeric_limits<std::uint64_t>::max();
    return t;
  }

  IoStats& operator+=(const IoStats& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  /// Counter delta (requires *this >= o component-wise).
  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    return IoStats{a.reads - b.reads, a.writes - b.writes};
  }

  friend bool operator==(const IoStats&, const IoStats&) = default;
};

/// "reads=R writes=W" human-readable form.
std::string to_string(const IoStats& s);

}  // namespace aem
