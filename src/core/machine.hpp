// The (M,B,omega)-AEM machine: cost accounting, capacity enforcement,
// phase attribution, and optional trace recording.
//
// The machine itself stores no data — external arrays (core/ext_array.hpp)
// own their storage and report every block transfer here.  This keeps the
// machine non-templated while arrays are typed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/ledger.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace aem {

class Machine {
 public:
  explicit Machine(Config cfg);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- model parameters -------------------------------------------------
  const Config& config() const { return cfg_; }
  std::size_t M() const { return cfg_.memory_elems; }
  std::size_t B() const { return cfg_.block_elems; }
  std::uint64_t omega() const { return cfg_.write_cost; }
  /// m = ceil(M/B).
  std::size_t m() const { return cfg_.m(); }
  /// n = ceil(N/B) for a given element count N.
  std::size_t n_of(std::size_t elems) const { return cfg_.blocks_for(elems); }

  // --- accounting --------------------------------------------------------
  IoStats stats() const { return stats_; }
  /// Q = Q_r + omega * Q_w since construction or the last reset.
  std::uint64_t cost() const { return stats_.cost(cfg_.write_cost); }
  void reset_stats();

  MemoryLedger& ledger() { return ledger_; }
  const MemoryLedger& ledger() const { return ledger_; }

  // --- phase attribution ---------------------------------------------------
  /// RAII scope attributing subsequent I/Os to a named phase.  Phases nest
  /// hierarchically: an I/O counts toward every phase on the stack, so an
  /// outer phase's stats subsume those of the phases it encloses.
  class PhaseScope {
   public:
    PhaseScope(Machine& mach, std::string name);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& mach_;
  };

  PhaseScope phase(std::string name) { return PhaseScope(*this, std::move(name)); }
  const std::map<std::string, IoStats>& phase_stats() const { return phases_; }
  void clear_phase_stats() { phases_.clear(); }

  // --- wear tracking ---------------------------------------------------
  /// NVM cells have limited write endurance, so beyond total write COUNT
  /// (the omega-weighted cost), write CONCENTRATION matters: an algorithm
  /// that hammers one block ages it omega-independent-ly.  When enabled,
  /// the machine histograms writes per (array, block).
  void enable_wear_tracking() { wear_.emplace(); }
  bool wear_tracking() const { return wear_.has_value(); }

  struct WearStats {
    std::uint64_t blocks_written = 0;  // distinct (array, block) targets
    std::uint64_t max_writes = 0;      // to the most-written block
    double mean_writes = 0.0;          // across written blocks
  };
  WearStats wear_stats() const;

  // --- tracing -------------------------------------------------------------
  /// Starts recording ops into a fresh trace (dropping any previous one).
  void enable_trace();
  void disable_trace();
  bool tracing() const { return trace_ != nullptr; }
  /// The active trace, or nullptr when tracing is disabled.
  Trace* trace() { return trace_.get(); }
  const Trace* trace() const { return trace_.get(); }
  /// Detaches and returns the recorded trace, disabling tracing.
  std::unique_ptr<Trace> take_trace();

  // --- hooks used by ExtArray ----------------------------------------------
  /// Registers an array; the returned id appears in traces and diagnostics.
  std::uint32_t register_array(std::string name);
  const std::string& array_name(std::uint32_t id) const;

  /// Charges one block read / write and records it if tracing.
  IoTicket on_read(std::uint32_t array, std::uint64_t block);
  IoTicket on_write(std::uint32_t array, std::uint64_t block);

 private:
  friend class PhaseScope;

  Config cfg_;
  MemoryLedger ledger_;
  IoStats stats_;
  std::vector<std::string> arrays_;
  std::vector<std::string> phase_stack_;
  std::map<std::string, IoStats> phases_;
  std::unique_ptr<Trace> trace_;
  std::optional<std::map<std::pair<std::uint32_t, std::uint64_t>,
                         std::uint64_t>>
      wear_;

  void attribute(bool is_write);
};

}  // namespace aem
