// The (M,B,omega)-AEM machine: cost accounting, capacity enforcement,
// phase attribution, and optional trace recording.
//
// The machine itself stores no data — external arrays (core/ext_array.hpp)
// own their storage and report every block transfer here.  This keeps the
// machine non-templated while arrays are typed.
//
// Hot-path design: on_read/on_write run once per simulated block transfer,
// so every experiment's wall clock is bounded by their cost.  All per-I/O
// work is therefore flat-array arithmetic:
//
//  * phase names are interned to dense ids at PhaseScope construction, and
//    the duplicate-name check runs once per scope push — attribute() is a
//    loop over a small precomputed id list incrementing flat counters;
//  * the wear histogram is a per-array vector indexed by block (block
//    indices are dense: arrays are contiguous), not a map over
//    (array, block) pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/faults.hpp"
#include "core/ledger.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace aem {

/// One operation of a batched submission (Machine::submit): the same
/// (kind, array, block) triple on_read/on_write take, queued instead of
/// dispatched.
struct BlockOp {
  OpKind kind = OpKind::kRead;
  std::uint32_t array = 0;
  std::uint64_t block = 0;
};

class Machine {
 public:
  explicit Machine(Config cfg);
  virtual ~Machine() = default;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- model parameters -------------------------------------------------
  const Config& config() const { return cfg_; }
  std::size_t M() const { return cfg_.memory_elems; }
  std::size_t B() const { return cfg_.block_elems; }
  std::uint64_t omega() const { return cfg_.write_cost; }
  /// m = ceil(M/B).
  std::size_t m() const { return cfg_.m(); }
  /// n = ceil(N/B) for a given element count N.
  std::size_t n_of(std::size_t elems) const { return cfg_.blocks_for(elems); }

  // --- accounting --------------------------------------------------------
  IoStats stats() const { return stats_; }
  /// Q = Q_r + omega * Q_w since construction or the last reset.
  std::uint64_t cost() const { return stats_.cost(cfg_.write_cost); }
  virtual void reset_stats();

  MemoryLedger& ledger() { return ledger_; }
  const MemoryLedger& ledger() const { return ledger_; }
  /// True if any reservation over-released (a masked double-release bug);
  /// see MemoryLedger::poisoned().
  bool ledger_poisoned() const { return ledger_.poisoned(); }

  // --- phase attribution ---------------------------------------------------
  /// RAII scope attributing subsequent I/Os to a named phase.  Phases nest
  /// hierarchically: an I/O counts toward every phase on the stack, so an
  /// outer phase's stats subsume those of the phases it encloses.  A name
  /// already active on the stack is counted once (the dedup is decided here,
  /// at push time, not per I/O).
  class PhaseScope {
   public:
    PhaseScope(Machine& mach, std::string_view name);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& mach_;
    bool owns_slot_;  // false when this name was already active (duplicate)
  };

  PhaseScope phase(std::string_view name) { return PhaseScope(*this, name); }

  /// Per-phase I/O counters, by name, for phases that performed any I/O.
  /// Built on demand from the interned-id storage (not the hot path).
  std::map<std::string, IoStats> phase_stats() const;
  void clear_phase_stats();

  /// Interned-phase introspection (stable ids, used by core/metrics).
  std::size_t phase_count() const { return phase_names_.size(); }
  const std::string& phase_name(std::uint32_t id) const;
  const IoStats& phase_io(std::uint32_t id) const;

  // --- wear tracking ---------------------------------------------------
  /// NVM cells have limited write endurance, so beyond total write COUNT
  /// (the omega-weighted cost), write CONCENTRATION matters: an algorithm
  /// that hammers one block ages it omega-independent-ly.  When enabled,
  /// the machine histograms writes per (array, block).
  void enable_wear_tracking() { wear_.emplace(); }
  bool wear_tracking() const { return wear_.has_value(); }

  struct WearStats {
    std::uint64_t blocks_written = 0;  // distinct (array, block) targets
    std::uint64_t max_writes = 0;      // to the most-written block
    double mean_writes = 0.0;          // across written blocks
  };
  WearStats wear_stats() const;

  /// Per-array wear profile (empty when wear tracking is off).
  struct ArrayWear {
    std::uint32_t array = 0;
    std::uint64_t blocks_written = 0;
    std::uint64_t writes = 0;
    std::uint64_t max_writes = 0;
  };
  std::vector<ArrayWear> wear_by_array() const;

  // --- fault injection & endurance (core/faults) ---------------------------
  /// Installs (replacing any previous) a deterministic fault policy: from
  /// now on ExtArray block transfers are subject to the configured fault
  /// schedule, recovery machinery, and cost ceilings.  With no policy
  /// installed the machine is the perfect device it always was — the hot
  /// path only pays one null-pointer test, and Q is byte-identical.
  void install_faults(FaultConfig cfg);
  void clear_faults() { faults_.reset(); }
  FaultPolicy* faults() { return faults_.get(); }
  const FaultPolicy* faults() const { return faults_.get(); }

  // --- reliability (recovery-bill attribution) -----------------------------
  /// Accumulated bills of recovery passes run on this machine (e.g.
  /// KvStore::recover()); cleared by reset_stats().  Surfaces in the
  /// metrics snapshot's "reliability" section.
  const RecoveryStats& recovery_stats() const { return recovery_; }
  /// Notes one recovery pass's full charged bill (reads / writes / Q
  /// deltas of the pass).  The I/Os themselves were charged through
  /// on_read/on_write as usual; this records their attribution.
  void note_recovery(std::uint64_t reads, std::uint64_t writes,
                     std::uint64_t cost) {
    ++recovery_.scans;
    recovery_.reads += reads;
    recovery_.writes += writes;
    recovery_.cost += cost;
  }

  // --- block cache (core/cache.hpp) ----------------------------------------
  /// Installs (replacing any previous — setup-time only, a replaced pool's
  /// dirty blocks are dropped uncharged) a write-back block cache between
  /// ExtArray traffic and the counters.  Capacity 0 is strict bypass: no
  /// pool is created, the hot path pays one null-pointer test, and Q is
  /// byte-identical to the uncached machine.  A cache configured on the
  /// Config (cfg.cache) is installed by the constructor.
  void install_cache(CacheConfig cfg);
  void remove_cache() { cache_.reset(); }
  BlockCache* cache() { return cache_.get(); }
  const BlockCache* cache() const { return cache_.get(); }
  /// Writes back every dirty cached block (each a charged omega-write that
  /// can fault and retry like any other); returns the write-back count.
  /// Call it before reading cost() off a cached run — resident dirty
  /// blocks are deferred writes Q has not seen yet.  No-op without a cache.
  std::size_t flush_cache() { return cache_ ? cache_->flush() : 0; }

  // --- tracing -------------------------------------------------------------
  /// Starts recording ops into a fresh trace (dropping any previous one).
  void enable_trace();
  void disable_trace();
  bool tracing() const { return trace_ != nullptr; }
  /// The active trace, or nullptr when tracing is disabled.
  Trace* trace() { return trace_.get(); }
  const Trace* trace() const { return trace_.get(); }
  /// Detaches and returns the recorded trace, disabling tracing.
  std::unique_ptr<Trace> take_trace();

  // --- hooks used by ExtArray ----------------------------------------------
  /// Registers an array; the returned id appears in traces and diagnostics.
  /// Virtual (with on_read/on_write/reset_stats) so core/sharding's
  /// ShardedMachine can mirror the call onto its member devices; the
  /// overhead on the plain machine is one indirect call per simulated I/O,
  /// re-measured by bench_m0_overhead's speedup floor.
  virtual std::uint32_t register_array(std::string name);
  const std::string& array_name(std::uint32_t id) const;
  std::size_t array_count() const { return arrays_.size(); }

  /// Charges one block read / write and records it if tracing.
  virtual IoTicket on_read(std::uint32_t array, std::uint64_t block);
  virtual IoTicket on_write(std::uint32_t array, std::uint64_t block);

  /// Batched submission (docs/MODEL.md section 17): charges every op in
  /// `ops` with ONE virtual dispatch, amortizing the per-op counter /
  /// phase / budget bookkeeping across the batch.  Counters, wear, phase
  /// attribution, and the trace op sequence are byte-identical to issuing
  /// the same ops through on_read/on_write in order; `tickets` (empty, or
  /// exactly ops.size()) receives the per-op completion tickets in
  /// submission order.
  ///
  /// Fault/crash schedules keep their per-op firing points: a batch that
  /// contains the armed crash write degrades to the per-op loop so
  /// CrashError fires on exactly the same Nth charged write; a batch whose
  /// total would land past a configured cost/I/O ceiling is rejected with
  /// BudgetExceeded UP FRONT, charging nothing (all-or-nothing admission —
  /// the one documented divergence from the per-op path, which charges up
  /// to and including the crossing op).
  virtual void submit(std::span<const BlockOp> ops,
                      std::span<IoTicket> tickets);
  /// Convenience drain when no caller wants the tickets.
  void submit(std::span<const BlockOp> ops) { submit(ops, {}); }

 protected:
  /// How submit() must charge a batch of `reads` + `writes` ops given the
  /// installed fault policy.  Throws BudgetExceeded (charging nothing) when
  /// the batch total would cross a ceiling; returns kPerOp when the armed
  /// crash point falls inside the batch.
  enum class BatchPlan { kBulk, kPerOp };
  BatchPlan plan_batch(std::uint64_t reads, std::uint64_t writes) const;

  /// The bulk half of submit(): counters/phases charged once for the whole
  /// batch, wear and trace recorded per op in submission order.  Callers
  /// must have cleared the plan (plan_batch == kBulk) first.
  void bulk_charge(std::span<const BlockOp> ops, std::uint64_t reads,
                   std::uint64_t writes, std::span<IoTicket> tickets);

  /// The degraded half: replays the batch through the virtual per-op hooks
  /// (exact per-op semantics, including mid-batch throws).
  void per_op_submit(std::span<const BlockOp> ops, std::span<IoTicket> tickets);

  static void validate_tickets(std::span<const BlockOp> ops,
                               std::span<IoTicket> tickets);

 private:
  friend class PhaseScope;

  /// Heterogeneous string hashing so phase interning can look up a
  /// string_view without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint32_t intern_phase(std::string_view name);

  Config cfg_;
  MemoryLedger ledger_;
  IoStats stats_;
  std::vector<std::string> arrays_;

  // Phase interning + attribution state.  active_phases_ holds the DISTINCT
  // ids currently on the scope stack, in push order; phase_active_ is the
  // per-id membership flag that makes the duplicate check O(1) at push.
  std::vector<std::string> phase_names_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      phase_ids_;
  std::vector<IoStats> phase_totals_;
  std::vector<std::uint8_t> phase_active_;
  std::vector<std::uint32_t> active_phases_;

  std::unique_ptr<Trace> trace_;
  std::unique_ptr<FaultPolicy> faults_;
  std::unique_ptr<BlockCache> cache_;
  RecoveryStats recovery_;
  // wear_[array][block] = write count; vectors grow on demand (block indices
  // are dense within an array, so this is a flat histogram, not a map).
  std::optional<std::vector<std::vector<std::uint64_t>>> wear_;

  void attribute(bool is_write) {
    for (std::uint32_t id : active_phases_) {
      IoStats& s = phase_totals_[id];
      if (is_write) {
        ++s.writes;
      } else {
        ++s.reads;
      }
    }
  }

  void record_wear(std::uint32_t array, std::uint64_t block) {
    auto& per_array = *wear_;
    if (array >= per_array.size()) per_array.resize(array + 1);
    auto& blocks = per_array[array];
    if (block >= blocks.size()) blocks.resize(block + 1, 0);
    ++blocks[block];
  }
};

}  // namespace aem
