#include "core/cache.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace aem {

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLru: return "lru";
    case CachePolicy::kClock: return "clock";
    case CachePolicy::kCleanFirst: return "clean-first";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (clean_window > capacity_blocks)
    throw std::invalid_argument(
        "CacheConfig: clean_window exceeds capacity_blocks");
}

BlockCache::BlockCache(CacheConfig cfg, std::uint64_t omega) : cfg_(cfg) {
  cfg_.validate();
  if (cfg_.capacity_blocks == 0)
    throw std::invalid_argument(
        "BlockCache: capacity 0 is bypass mode — install no cache instead");
  if (cfg_.capacity_blocks >= kNil)
    throw std::invalid_argument("BlockCache: capacity too large");
  frames_.resize(cfg_.capacity_blocks);
  // Free slots popped back-to-front, so frame 0 is used first (stable,
  // deterministic layout for tests and the CLOCK hand).
  free_.resize(cfg_.capacity_blocks);
  for (std::size_t i = 0; i < free_.size(); ++i)
    free_[i] = static_cast<std::uint32_t>(free_.size() - 1 - i);
  if (cfg_.policy == CachePolicy::kCleanFirst) {
    if (cfg_.clean_window != 0) {
      window_ = cfg_.clean_window;
    } else if (omega > 1) {
      const std::size_t cap = cfg_.capacity_blocks;
      window_ = cap - std::max<std::size_t>(
                          1, cap / static_cast<std::size_t>(
                                 std::min<std::uint64_t>(omega, cap)));
    }
    // omega == 1: window stays 0 and the policy is exact LRU.
  }
}

void BlockCache::list_push_front(std::uint32_t frame) {
  Frame& f = frames_[frame];
  f.prev = kNil;
  f.next = head_;
  if (head_ != kNil) frames_[head_].prev = frame;
  head_ = frame;
  if (tail_ == kNil) tail_ = frame;
}

void BlockCache::list_unlink(std::uint32_t frame) {
  Frame& f = frames_[frame];
  if (f.prev != kNil) {
    frames_[f.prev].next = f.next;
  } else {
    head_ = f.next;
  }
  if (f.next != kNil) {
    frames_[f.next].prev = f.prev;
  } else {
    tail_ = f.prev;
  }
  f.prev = f.next = kNil;
}

void BlockCache::touch(std::uint32_t frame) {
  switch (cfg_.policy) {
    case CachePolicy::kClock:
      frames_[frame].ref = true;
      break;
    case CachePolicy::kLru:
    case CachePolicy::kCleanFirst:
      if (head_ != frame) {
        list_unlink(frame);
        list_push_front(frame);
      }
      break;
  }
}

std::uint32_t BlockCache::pick_victim() {
  switch (cfg_.policy) {
    case CachePolicy::kClock: {
      // Second chance: sweep the frame table circularly, clearing
      // reference bits; the first unreferenced valid frame is the victim.
      // Terminates: one full sweep clears every bit.
      for (;;) {
        Frame& f = frames_[clock_hand_];
        const std::size_t here = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % frames_.size();
        if (!f.valid) continue;
        if (f.ref) {
          f.ref = false;
          continue;
        }
        return static_cast<std::uint32_t>(here);
      }
    }
    case CachePolicy::kCleanFirst: {
      // Scan up to window() blocks from the cold end for a clean victim;
      // a clean eviction costs at most one future read, a dirty one a
      // certain omega-priced write-back.  No clean block in the window
      // (or window 0, the omega = 1 degeneration): plain LRU.
      std::uint32_t f = tail_;
      for (std::size_t scanned = 0; f != kNil && scanned < window_;
           ++scanned, f = frames_[f].prev) {
        if (!frames_[f].dirty) return f;
      }
      return tail_;
    }
    case CachePolicy::kLru:
      return tail_;
  }
  return tail_;
}

void BlockCache::evict_one() {
  const std::uint32_t v = pick_victim();
  Frame& f = frames_[v];
  if (f.dirty) {
    if (sinks_[f.array] == nullptr)
      throw std::logic_error(
          "BlockCache::evict_one: dirty block " + std::to_string(f.block) +
          " of array " + std::to_string(f.array) +
          " has no write-back sink (array destroyed or never registered)");
    // May throw (BudgetExceeded, FaultError): nothing has been mutated
    // yet, so the victim simply stays resident and dirty.
    sinks_[f.array]->cache_write_back(f.block);
    ++stats_.write_backs;
    ++stats_.evictions_dirty;
    --resident_dirty_;
    f.dirty = false;
  } else {
    ++stats_.evictions_clean;
  }
  index_[f.array].erase(f.block);
  list_unlink(v);
  f.valid = false;
  f.ref = false;
  --resident_;
  free_.push_back(v);
}

void BlockCache::insert(std::uint32_t array, std::uint64_t block, bool dirty,
                        Sink* sink) {
  if (array >= index_.size()) {
    index_.resize(array + 1);
    sinks_.resize(array + 1, nullptr);
  }
  sinks_[array] = sink;
  if (free_.empty()) evict_one();
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  Frame& f = frames_[slot];
  f.array = array;
  f.block = block;
  f.valid = true;
  f.dirty = dirty;
  f.ref = true;
  list_push_front(slot);
  index_[array].emplace(block, Entry{slot});
  ++resident_;
  if (dirty) ++resident_dirty_;
}

void BlockCache::move_sink(std::uint32_t array, Sink* sink) {
  if (array < sinks_.size()) sinks_[array] = sink;
}

std::size_t BlockCache::flush() {
  ++stats_.flushes;
  // Deterministic order regardless of hash-map iteration: collect and sort.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dirty_blocks;
  dirty_blocks.reserve(resident_dirty_);
  for (const Frame& f : frames_)
    if (f.valid && f.dirty) dirty_blocks.emplace_back(f.array, f.block);
  std::sort(dirty_blocks.begin(), dirty_blocks.end());
  std::size_t written = 0;
  auto mark_clean = [&](std::uint32_t array, std::uint64_t block) {
    Frame& f = frames_[lookup(array, block)->frame];
    f.dirty = false;
    --resident_dirty_;
    ++stats_.write_backs;
    ++written;
  };
  // Group the sorted dirty list into per-array runs and hand each run to
  // the sink as one batch (one Machine::submit on a plain device; the
  // default sink falls back to the per-block loop).  `done` counts the
  // blocks the sink completed, so an exception mid-run marks exactly the
  // written-back prefix clean and leaves the failing block (and everything
  // after it) dirty — identical retry semantics to the per-block flush.
  std::vector<std::uint64_t> run;
  std::size_t i = 0;
  while (i < dirty_blocks.size()) {
    const std::uint32_t array = dirty_blocks[i].first;
    if (sinks_[array] == nullptr)
      throw std::logic_error(
          "BlockCache::flush: dirty block " +
          std::to_string(dirty_blocks[i].second) + " of array " +
          std::to_string(array) +
          " has no write-back sink (array destroyed or never registered)");
    run.clear();
    std::size_t j = i;
    while (j < dirty_blocks.size() && dirty_blocks[j].first == array)
      run.push_back(dirty_blocks[j++].second);
    std::size_t done = 0;
    try {
      sinks_[array]->cache_write_back_batch(run, done);
    } catch (...) {
      for (std::size_t k = 0; k < done; ++k) mark_clean(array, run[k]);
      throw;
    }
    for (std::uint64_t block : run) mark_clean(array, block);
    i = j;
  }
  return written;
}

void BlockCache::invalidate_array(std::uint32_t array) {
  // The array's storage — and with it the Sink the array implements — is
  // going away.  Forget the sink FIRST, even when no blocks are resident:
  // leaving the pointer in sinks_ would dangle into the destroyed ExtArray,
  // an armed use-after-free for any later evict_one()/flush() that touches
  // this slot.
  if (array < sinks_.size()) sinks_[array] = nullptr;
  if (array >= index_.size() || index_[array].empty()) return;
  // Deterministic frame-order sweep (the map's iteration order is not).
  for (std::uint32_t v = 0; v < frames_.size(); ++v) {
    Frame& f = frames_[v];
    if (!f.valid || f.array != array) continue;
    if (f.dirty) {
      ++stats_.invalidated_dirty;
      --resident_dirty_;
    }
    list_unlink(v);
    f.valid = false;
    f.dirty = false;
    f.ref = false;
    --resident_;
    free_.push_back(v);
  }
  index_[array].clear();
}

bool BlockCache::contains(std::uint32_t array, std::uint64_t block) const {
  return lookup(array, block) != nullptr;
}

bool BlockCache::has_sink(std::uint32_t array) const {
  return array < sinks_.size() && sinks_[array] != nullptr;
}

bool BlockCache::dirty(std::uint32_t array, std::uint64_t block) const {
  const Entry* e = lookup(array, block);
  return e != nullptr && frames_[e->frame].dirty;
}

}  // namespace aem
