// Asymmetry-aware write-back block cache (buffer pool) for the AEM machine.
//
// A BlockCache sits between ExtArray block traffic and the Machine's cost
// counters: reads and writes of resident blocks are served from the pool
// for free, writes dirty their block instead of paying omega immediately,
// and the deferred device write is charged once — at eviction or flush —
// no matter how many times the block was rewritten while resident.  That
// write coalescing is exactly what a buffer pool buys on write-expensive
// memory, and the eviction policy decides who pays for it:
//
//  * kLru        — classic least-recently-used, the symmetric-cost default;
//  * kClock      — second-chance approximation of LRU (reference bits);
//  * kCleanFirst — the asymmetry-aware policy (CFLRU-style): evicting a
//    clean block costs a possible future read (1), evicting a dirty block
//    costs a certain write (omega) plus the future read, so the policy
//    scans a window of coldest blocks for a clean victim before giving up
//    and evicting the true LRU block.  The window is derived from the
//    machine's omega (capacity - max(1, capacity/omega)), so at omega = 1
//    the window is empty and the policy degenerates to exact LRU — the
//    classic EM special case stays classic.
//
// The pool models a device-side buffer (an SSD's DRAM cache, a controller
// buffer): its capacity does NOT count against the algorithm's internal
// memory M, and its hits produce no machine I/O, no trace ops, and no wear.
// Write-backs are real charged writes that go through the full ExtArray
// device path — under an installed FaultPolicy they can fault, retry,
// verify, and retire blocks like any other write.
//
// Capacity 0 is the strict bypass mode: no cache object is installed and
// the transfer path — and therefore Q — is byte-identical to the uncached
// library (enforced by a hard guard in bench_m0_overhead, same pattern as
// the fault subsystem's zero-rate guarantee).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace aem {

/// Eviction policy of the block cache.
enum class CachePolicy : std::uint8_t {
  kLru,         // least recently used
  kClock,       // second-chance / reference bits
  kCleanFirst,  // asymmetry-aware: prefer clean victims in a cold window
};

const char* to_string(CachePolicy p);

struct CacheConfig {
  /// Pool capacity in blocks.  0 = bypass: no cache is installed and the
  /// I/O path is byte-identical to the uncached library.
  std::size_t capacity_blocks = 0;

  CachePolicy policy = CachePolicy::kLru;

  /// kCleanFirst only: how many blocks, counted from the cold (LRU) end,
  /// are scanned for a clean victim before the true LRU block is evicted.
  /// 0 = derive from the machine's omega at install time:
  /// capacity - max(1, capacity/omega), which is 0 (exact LRU) at omega = 1
  /// and approaches capacity - 1 (protect only the MRU block) as omega
  /// grows.  Ignored by kLru / kClock.
  std::size_t clean_window = 0;

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const;
};

/// Counters of everything the cache did.  Flows into the metrics snapshot
/// (schema aem.machine.metrics/v8, docs/MODEL.md sec. 11).
struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;   // each paid one charged device read
  std::uint64_t write_hits = 0;    // rewrite of a resident block: free
  std::uint64_t write_misses = 0;  // write-allocate, no device I/O yet
  std::uint64_t evictions_clean = 0;
  std::uint64_t evictions_dirty = 0;  // each paid one charged device write
  std::uint64_t write_backs = 0;      // dirty evictions + flush writes
  std::uint64_t flushes = 0;          // flush() calls
  /// Dirty blocks dropped WITHOUT a write-back: their array was destroyed
  /// or restaged (unsafe_host_fill), so there was no storage left to
  /// persist to.  Nonzero here means Q excludes those writes — flush
  /// before tearing down arrays if full accounting matters.
  std::uint64_t invalidated_dirty = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// The buffer pool proper: a fixed set of block frames, an eviction policy,
/// and per-array write-back sinks.  Holds metadata only — the cached bytes
/// live in the owning ExtArray, which registers a Sink so evictions can
/// push dirty blocks back through the charged (and possibly faulty) device
/// write path.  Owned by Machine (Machine::install_cache); consulted by
/// ExtArray on every block transfer.  Deterministic: identical op
/// sequences produce identical hits, victims, and charges.
class BlockCache {
 public:
  /// Write-back target of one array, implemented by ExtArray<T>.  The sink
  /// must perform a charged device write of the block's current (pool)
  /// contents; under fault injection that write retries, verifies, and
  /// remaps like any other.
  class Sink {
   public:
    virtual void cache_write_back(std::uint64_t block) = 0;

    /// Writes back a RUN of blocks of one array (ascending order).  `done`
    /// counts blocks fully written back so far — on an exception the caller
    /// marks exactly those clean and keeps the rest dirty, preserving the
    /// per-block flush retry contract.  The default is the per-block loop;
    /// ExtArray overrides it to charge the run as one batched
    /// Machine::submit on plain devices (docs/MODEL.md section 17).
    virtual void cache_write_back_batch(std::span<const std::uint64_t> blocks,
                                        std::size_t& done) {
      for (std::uint64_t b : blocks) {
        cache_write_back(b);
        ++done;
      }
    }

   protected:
    ~Sink() = default;
  };

  /// `omega` parameterizes the kCleanFirst auto window; capacity must be
  /// nonzero (capacity 0 means bypass — don't construct a cache at all).
  BlockCache(CacheConfig cfg, std::uint64_t omega);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  const CacheConfig& config() const { return cfg_; }
  std::size_t capacity() const { return frames_.size(); }
  /// The effective kCleanFirst window (0 for other policies).
  std::size_t window() const { return window_; }

  const CacheStats& stats() const { return stats_; }
  /// Clears the counters only; resident blocks and dirtiness are kept
  /// (their deferred write-backs will charge whoever runs next, which is
  /// why measured cases should flush() before reset).
  void reset_stats() { stats_ = CacheStats{}; }

  std::size_t resident() const { return resident_; }
  std::size_t resident_dirty() const { return resident_dirty_; }

  // --- the ExtArray-facing hot path ---------------------------------------
  /// Lookup for a read; on a hit the block is touched (policy-specific) and
  /// true is returned — serve the data from the pool, charge nothing.
  bool find_read(std::uint32_t array, std::uint64_t block) {
    Entry* e = lookup(array, block);
    if (e == nullptr) {
      ++stats_.read_misses;
      return false;
    }
    ++stats_.read_hits;
    touch(e->frame);
    return true;
  }

  /// Lookup for a write; on a hit the block is touched and marked dirty.
  bool find_write(std::uint32_t array, std::uint64_t block) {
    Entry* e = lookup(array, block);
    if (e == nullptr) {
      ++stats_.write_misses;
      return false;
    }
    ++stats_.write_hits;
    Frame& f = frames_[e->frame];
    if (!f.dirty) {
      f.dirty = true;
      ++resident_dirty_;
    }
    touch(e->frame);
    return true;
  }

  /// Makes `block` resident (it must not already be), evicting a victim if
  /// the pool is full.  A dirty victim is written back through its sink
  /// BEFORE the insertion mutates anything, so an exception thrown by the
  /// write-back (BudgetExceeded, FaultError) leaves the victim resident
  /// and dirty, and the new block simply not cached.  `sink` is remembered
  /// as the array's write-back target.
  void insert(std::uint32_t array, std::uint64_t block, bool dirty,
              Sink* sink);

  /// Re-points an array's write-back sink (ExtArray move support).
  void move_sink(std::uint32_t array, Sink* sink);

  /// Writes back every dirty block (deterministically, in ascending
  /// (array, block) order) and marks it clean; resident blocks stay
  /// resident.  Returns the number of charged write-backs.  On an
  /// exception mid-flush, already-flushed blocks are clean, the failing
  /// one stays dirty, and flush() can simply be called again.
  std::size_t flush();

  /// Drops every entry of `array` WITHOUT write-backs (the array's storage
  /// is going away: destruction or restaging).  Dirty drops are counted in
  /// stats().invalidated_dirty.  Also forgets the array's write-back sink —
  /// the Sink lives inside the ExtArray being destroyed, so keeping the
  /// pointer would leave evict_one()/flush() one dirty frame away from a
  /// use-after-free.
  void invalidate_array(std::uint32_t array);

  // --- introspection (tests, metrics) -------------------------------------
  bool contains(std::uint32_t array, std::uint64_t block) const;
  bool dirty(std::uint32_t array, std::uint64_t block) const;
  /// True while a live write-back sink is registered for `array` (cleared
  /// by invalidate_array; regression coverage for the dangling-sink bug).
  bool has_sink(std::uint32_t array) const;

 private:
  static constexpr std::uint32_t kNil =
      std::numeric_limits<std::uint32_t>::max();

  struct Frame {
    std::uint32_t array = 0;
    std::uint64_t block = 0;
    bool valid = false;
    bool dirty = false;
    bool ref = false;  // kClock reference bit
    // Recency list links (head = MRU, tail = LRU).
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  struct Entry {
    std::uint32_t frame;
  };

  Entry* lookup(std::uint32_t array, std::uint64_t block) {
    if (array >= index_.size()) return nullptr;
    auto it = index_[array].find(block);
    return it == index_[array].end() ? nullptr : &it->second;
  }
  const Entry* lookup(std::uint32_t array, std::uint64_t block) const {
    return const_cast<BlockCache*>(this)->lookup(array, block);
  }

  void touch(std::uint32_t frame);
  void list_push_front(std::uint32_t frame);
  void list_unlink(std::uint32_t frame);

  /// Picks the policy's victim frame (the pool must be full).
  std::uint32_t pick_victim();
  /// Writes back (if dirty) and removes the victim.  May throw from the
  /// write-back; in that case the victim is untouched.
  void evict_one();

  CacheConfig cfg_;
  std::size_t window_ = 0;
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> free_;  // unused frame slots (LIFO)
  // index_[array][block] -> frame.  Array ids are dense machine handles,
  // so a vector of per-array maps beats hashing the pair.
  std::vector<std::unordered_map<std::uint64_t, Entry>> index_;
  std::vector<Sink*> sinks_;
  std::uint32_t head_ = kNil;  // MRU
  std::uint32_t tail_ = kNil;  // LRU
  std::size_t clock_hand_ = 0;
  std::size_t resident_ = 0;
  std::size_t resident_dirty_ = 0;
  CacheStats stats_;
};

}  // namespace aem
