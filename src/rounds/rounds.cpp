#include "rounds/rounds.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace aem::rounds {

std::vector<Round> split_rounds(const Trace& trace, std::size_t m,
                                std::uint64_t omega) {
  if (m == 0) throw std::invalid_argument("split_rounds: m == 0");
  const std::uint64_t budget = omega * static_cast<std::uint64_t>(m);
  std::vector<Round> rounds;
  Round cur;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint64_t c = trace.op(i).cost(omega);
    if (cur.cost + c > budget) {
      cur.last = i;
      rounds.push_back(cur);
      cur = Round{i, i, 0};
    }
    cur.cost += c;
  }
  cur.last = trace.size();
  if (cur.last > cur.first || rounds.empty()) rounds.push_back(cur);
  return rounds;
}

bool validate_rounds(const Trace& trace, const std::vector<Round>& rounds,
                     std::size_t m_budget, std::uint64_t omega,
                     bool check_lower) {
  if (rounds.empty()) return trace.size() == 0;
  const std::uint64_t budget = omega * static_cast<std::uint64_t>(m_budget);
  std::size_t expect_first = 0;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const Round& round = rounds[r];
    if (round.first != expect_first || round.last < round.first) return false;
    expect_first = round.last;
    std::uint64_t cost = 0;
    for (std::size_t i = round.first; i < round.last; ++i)
      cost += trace.op(i).cost(omega);
    if (cost != round.cost) return false;
    if (cost > budget) return false;
    if (check_lower && r + 1 < rounds.size() &&
        cost < omega * static_cast<std::uint64_t>(m_budget - 1))
      return false;
  }
  return expect_first == trace.size();
}

RoundBasedProgram make_round_based(const Trace& p, std::size_t m,
                                   std::uint64_t omega) {
  RoundBasedProgram out;
  out.original = p.stats();
  out.original_cost = p.cost(omega);

  const std::vector<Round> p_rounds = split_rounds(p, m, omega);

  std::uint64_t state_block_counter = 0;
  for (std::size_t r = 0; r < p_rounds.size(); ++r) {
    const Round& round = p_rounds[r];

    // Reload the persisted memory image of the previous round (skipped for
    // the first round; the lemma charges these reads to the previous round).
    if (r > 0) {
      for (std::size_t b = 0; b < m; ++b)
        out.trace.add(OpKind::kRead, kStateArray,
                      state_block_counter - m + b);
    }

    // Blocks written during this round live in M'' until the round ends.
    std::set<std::pair<std::uint32_t, std::uint64_t>> buffered;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> deferred_writes;
    for (std::size_t i = round.first; i < round.last; ++i) {
      const TraceOp& op = p.op(i);
      const auto key = std::make_pair(op.array, op.block);
      if (op.kind == OpKind::kRead) {
        // Served from M'' for free if written earlier in this round.
        if (buffered.count(key) == 0)
          out.trace.add(OpKind::kRead, op.array, op.block);
      } else {
        // Duplicated writes to the same block within a round collapse: only
        // the final image leaves M''.
        if (buffered.insert(key).second) deferred_writes.push_back(key);
      }
    }

    // End of round: flush M'' and persist the memory image (except after
    // the final round, where P has terminated and memory is discarded).
    for (const auto& [array, block] : deferred_writes)
      out.trace.add(OpKind::kWrite, array, block);
    if (r + 1 < p_rounds.size()) {
      for (std::size_t b = 0; b < m; ++b)
        out.trace.add(OpKind::kWrite, kStateArray, state_block_counter + b);
      state_block_counter += m;
    }
  }

  out.transformed = out.trace.stats();
  out.transformed_cost = out.trace.cost(omega);
  // P' runs on the (2M,B,omega)-AEM: its rounds have budget 2m.  The lower
  // window is not guaranteed for P' (a round of P may shrink when re-reads
  // are served from M''), so only the upper window is meaningful here.
  out.rounds = split_rounds(out.trace, 2 * m, omega);
  return out;
}

}  // namespace aem::rounds
