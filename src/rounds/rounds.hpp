// Round decomposition and the Lemma 4.1 round-based rewrite.
//
// Section 4 defines an omega*m-round as a maximal chunk of a program whose
// ops cost at most omega*m in total, with every round but the last costing
// at least omega*(m-1).  A program is round-based if internal memory is
// empty at round boundaries.  Lemma 4.1 shows any program P on an
// (M,B,omega)-AEM can be rewritten as a round-based program P' on the
// (2M,B,omega)-AEM at a constant-factor cost increase, by
//
//   * buffering all of a round's writes in the second half of memory (M'')
//     and flushing them at the round's end;
//   * serving re-reads of blocks written earlier in the same round from
//     M'' instead of external memory;
//   * persisting the internal-memory image (<= m blocks) at the end of each
//     round and reloading it at the start of the next.
//
// make_round_based performs exactly this rewrite on a recorded trace and
// reports the measured cost factor, which experiment E6 shows is a small
// constant — the executable content of Lemma 4.1 and Corollary 4.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace aem::rounds {

/// A half-open op range [first, last) of a trace with its total cost.
struct Round {
  std::size_t first = 0;
  std::size_t last = 0;
  std::uint64_t cost = 0;
};

/// Greedy split of `trace` into omega*m-rounds.  Guarantees every round
/// costs <= omega*m and every round but the last costs > omega*(m-1)
/// (each op costs at most omega, so stopping before an overflow leaves at
/// least omega*m - omega + 1).  Requires m >= 1.
std::vector<Round> split_rounds(const Trace& trace, std::size_t m,
                                std::uint64_t omega);

/// Checks the Section 4 round conditions: contiguous full coverage, per-round
/// cost <= omega * m_budget, and (when `check_lower`) cost >=
/// omega * (m_budget - 1) for all but the last round.
bool validate_rounds(const Trace& trace, const std::vector<Round>& rounds,
                     std::size_t m_budget, std::uint64_t omega,
                     bool check_lower = true);

/// The result of the Lemma 4.1 rewrite.
struct RoundBasedProgram {
  Trace trace;                 // the ops of P' (state I/Os use array id
                               // kStateArray)
  std::vector<Round> rounds;   // round structure of P' (budget 2m)
  IoStats original;            // P's counters
  IoStats transformed;         // P''s counters
  std::uint64_t original_cost = 0;
  std::uint64_t transformed_cost = 0;

  /// The Lemma 4.1 constant: cost(P') / cost(P).
  double cost_factor() const {
    return original_cost == 0
               ? 1.0
               : static_cast<double>(transformed_cost) /
                     static_cast<double>(original_cost);
  }
};

/// Array id used for the persisted internal-memory image of P'.
inline constexpr std::uint32_t kStateArray = 0xFFFFFFFFu;

/// Lemma 4.1: rewrite trace P (recorded on an (M,B,omega)-AEM with
/// m = ceil(M/B)) as a round-based program on the (2M,B,omega)-AEM.
RoundBasedProgram make_round_based(const Trace& p, std::size_t m,
                                   std::uint64_t omega);

}  // namespace aem::rounds
