#include "bounds/logmath.hpp"

#include <cmath>

namespace aem::bounds {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double log2_factorial(std::uint64_t n) {
  if (n <= 1) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) / kLn2;
}

double log2_binomial(std::uint64_t n, std::uint64_t k) {
  if (k == 0 || k >= n) return 0.0;
  return log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k);
}

double log2u(std::uint64_t x) {
  if (x <= 1) return 0.0;
  return std::log2(static_cast<double>(x));
}

double log_base(double x, double base, double floor_value) {
  if (x <= 1.0 || base <= 1.0) return floor_value;
  const double v = std::log2(x) / std::log2(base);
  return v < floor_value ? floor_value : v;
}

}  // namespace aem::bounds
