#include "bounds/permute_bounds.hpp"

#include <algorithm>

#include "bounds/logmath.hpp"

namespace aem::bounds {

double permute_bound_naive_branch(const AemParams& p) {
  return static_cast<double>(p.N);
}

double permute_bound_sort_branch(const AemParams& p) {
  const double n = static_cast<double>(p.n());
  const double base = static_cast<double>(p.omega) * static_cast<double>(p.m());
  const double levels = log_base(n, base);
  return static_cast<double>(p.omega) * n * levels;
}

double permute_lower_bound(const AemParams& p) {
  return std::min(permute_bound_naive_branch(p), permute_bound_sort_branch(p));
}

bool permute_bound_applicable(const AemParams& p) {
  return p.omega * p.B <= p.N;
}

double permute_lower_bound_total(const AemParams& p) {
  const double output = static_cast<double>(p.omega) *
                        static_cast<double>(p.n());
  return std::max(permute_lower_bound(p), output);
}

double permute_naive_upper_bound(const AemParams& p) {
  return static_cast<double>(p.N) +
         static_cast<double>(p.omega) * static_cast<double>(p.n());
}

double permute_sort_upper_bound(const AemParams& p) {
  // Sorting N (destination, value) records — a record is one atom in the
  // model — plus the tagging and stripping scans.
  return permute_bound_sort_branch(p) +
         3.0 * static_cast<double>(p.omega) * static_cast<double>(p.n());
}

double permute_lower_bound_via_flash(const AemParams& p) {
  const double base = permute_lower_bound(p);
  const double scan = 2.0 * static_cast<double>(p.omega) *
                      static_cast<double>(p.n());
  const double v = base - scan;
  return v > 0.0 ? v : 0.0;
}

double av_permute_bound_ios(std::uint64_t N, std::uint64_t M, std::uint64_t b) {
  if (b == 0) b = 1;
  const double blocks = static_cast<double>((N + b - 1) / b);
  const double mem_blocks = static_cast<double>(M) / static_cast<double>(b);
  const double sort_branch = blocks * log_base(blocks, mem_blocks);
  return std::min(static_cast<double>(N), sort_branch);
}

}  // namespace aem::bounds
