// Mechanized validation of the Section 4.2 counting argument at toy scale.
//
// The counting proof models a round-based permutation program as: per
// round, read up to omega*m blocks (cost r + omega*w <= omega*m), keep up
// to M atoms in memory (removing them from their blocks — atoms are
// indivisible and never duplicated), and write them back as up to m new
// blocks into empty locations; within-block order is normalized away.
//
// For machines tiny enough to enumerate (N <= ~6 atoms, a handful of block
// locations), this module performs EXHAUSTIVE breadth-first search over
// exactly that transition system and reports, per round count R, the number
// of distinct set-wise output permutations (ordered partitions of the atoms
// into output blocks) genuinely reachable.  Two facts can then be checked
// against ground truth rather than against proofs:
//
//   (1) reachable(R) <= P(R), the per-round product of inequality (1) —
//       i.e. the paper's upper bound on per-round progress really is an
//       upper bound;
//   (2) min_rounds_counting(params) <= R*, the true minimal round count
//       that reaches ALL N!/B!^{N/B} set-wise permutations — i.e. the
//       derived LOWER bound never exceeds the true optimum.
//
// The search is deliberately slightly MORE permissive than a real program
// (no minimum round cost, free choice of write locations among all empty
// slots), which only makes check (2) stronger.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace aem::bounds {

struct EnumParams {
  std::uint32_t N = 4;      // atoms (<= 8)
  std::uint32_t M = 4;      // memory capacity in atoms
  std::uint32_t B = 2;      // block capacity in atoms
  std::uint32_t omega = 1;  // write/read cost ratio
  std::uint32_t locations = 0;  // block locations; 0 = auto (n + m + 1)
  std::uint32_t max_rounds = 16;
};

struct EnumResult {
  /// reachable[r] = distinct set-wise permutations achievable within r
  /// rounds (cumulative; reachable[0] counts the initial configuration's).
  std::vector<std::uint64_t> reachable;
  /// N! / (B!^floor(N/B) * (N mod B)!) — the set-wise permutation count.
  std::uint64_t target = 0;
  /// Minimal R with reachable[R] == target, if reached within max_rounds.
  std::optional<std::uint32_t> rounds_to_complete;
  std::uint64_t states_explored = 0;
};

/// Exhaustive BFS (see header comment).  Throws std::invalid_argument for
/// parameters outside the enumerable regime (N > 8, locations > 8).
EnumResult enumerate_reachable_permutations(const EnumParams& p);

}  // namespace aem::bounds
