// Log-space combinatorics for the counting lower bounds.
//
// The counting argument of Section 4.2 compares N!/B!^{N/B} against the
// per-round permutation count of inequality (1).  Both sides overflow any
// fixed-width integer almost immediately, so all quantities here live in
// log2 space, computed via lgamma (exact enough: the bounds are asymptotic
// and the quantities compared differ by factors, not ulps).
#pragma once

#include <cstdint>

namespace aem::bounds {

/// log2(n!) via lgamma.  log2_factorial(0) == 0.
double log2_factorial(std::uint64_t n);

/// log2(C(n, k)); 0 if k > n or k == 0 edge cases consistent with C(n,0)=1.
double log2_binomial(std::uint64_t n, std::uint64_t k);

/// log2(x) for x >= 1 (returns 0 for x in {0,1}).
double log2u(std::uint64_t x);

/// log base `base` of x, clamped below by `floor_value` (default 1).
/// The EM-literature convention: a "log_{omega m} n" factor in a bound means
/// at least one pass, so callers clamp at 1.
double log_base(double x, double base, double floor_value = 1.0);

}  // namespace aem::bounds
