#include "bounds/counting.hpp"

#include <cmath>

#include "bounds/logmath.hpp"

namespace aem::bounds {

double log2_perms_per_round(const AemParams& p) {
  const std::uint64_t blocks_read = p.omega * p.M / p.B;  // omega M / B
  const std::uint64_t atoms_seen = p.omega * p.M;         // omega M
  const double mb = static_cast<double>(p.M) / static_cast<double>(p.B);

  double lg = 0.0;
  lg += log2_binomial(p.N, blocks_read);           // choose blocks to read
  lg += log2_binomial(atoms_seen, p.M);            // choose atoms to keep
  lg += static_cast<double>(p.M);                  // 2^M keep/discard choices
  lg += log2_factorial(p.M);                       // orderings of kept atoms
  lg -= mb * log2_factorial(p.B);                  // /B!^{M/B}
  lg += mb * log2u(3 * p.N);                       // (3N)^{M/B} placements
  return lg;
}

double log2_target_permutations(const AemParams& p) {
  const double nb = static_cast<double>(p.N) / static_cast<double>(p.B);
  return log2_factorial(p.N) - nb * log2_factorial(p.B);
}

std::uint64_t min_rounds_counting(const AemParams& p) {
  const double per_round = log2_perms_per_round(p);
  const double target = log2_target_permutations(p);
  if (target <= 0.0) return 0;
  if (per_round <= 0.0) return UINT64_MAX;  // no progress possible per round
  return static_cast<std::uint64_t>(std::ceil(target / per_round));
}

double counting_cost_bound_round_based(const AemParams& p) {
  const std::uint64_t r = min_rounds_counting(p);
  if (r <= 1) return 0.0;
  const double m1 = static_cast<double>(p.m() > 1 ? p.m() - 1 : 1);
  return static_cast<double>(r - 1) * static_cast<double>(p.omega) * m1;
}

double counting_cost_bound_general(const AemParams& p, double lemma41_factor) {
  AemParams doubled = p;
  doubled.M = 2 * p.M;
  return counting_cost_bound_round_based(doubled) / lemma41_factor;
}

}  // namespace aem::bounds
