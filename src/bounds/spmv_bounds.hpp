// Sparse-matrix dense-vector multiplication bounds (Section 5).
//
// The matrix is N x N with exactly delta non-zero entries per column
// (H = delta * N total), stored in column-major order.  h = ceil(H/B).
#pragma once

#include <cstdint>

#include "bounds/permute_bounds.hpp"

namespace aem::bounds {

struct SpmvParams {
  std::uint64_t N = 0;      // matrix dimension
  std::uint64_t delta = 1;  // non-zeros per column
  std::uint64_t M = 0;
  std::uint64_t B = 0;
  std::uint64_t omega = 1;

  std::uint64_t H() const { return delta * N; }
  std::uint64_t h() const { return (H() + B - 1) / B; }
  std::uint64_t n() const { return (N + B - 1) / B; }
  std::uint64_t m() const { return (M + B - 1) / B; }
};

/// The paper's tau(N, delta, B): the correction for orderings within input
/// blocks (definition from Bender et al. [5]):
///   tau = 3^{delta N}           if B <  delta
///   tau = 1                     if B == delta
///   tau = (2eB/delta)^{delta N} if B >  delta
/// Returned as log2(tau).
double log2_tau(std::uint64_t N, std::uint64_t delta, std::uint64_t B);

/// Theorem 5.1 lower bound:
///   Omega( min{ H, omega h log_{omega m} (N / max{delta, B}) } ).
double spmv_lower_bound(const SpmvParams& p);

/// The two branches separately.
double spmv_bound_naive_branch(const SpmvParams& p);  // H
double spmv_bound_sort_branch(const SpmvParams& p);   // omega h log_{omega m}(N/max{delta,B})

/// Theorem 5.1 preconditions: B > 2, M > 4B, omega*delta*M*B <= N^{1-eps}.
bool spmv_bound_applicable(const SpmvParams& p, double eps = 0.05);

/// Theorem 5.1's bound strengthened by the trivial output bound: writing
/// the dense result vector costs omega * n.
///   max( min{H, omega h log_{omega m}(N/max{delta,B})},  omega * n ).
double spmv_lower_bound_total(const SpmvParams& p);

/// Upper bound of the direct (naive) program: O(H + omega n).
double spmv_naive_upper_bound(const SpmvParams& p);

/// Upper bound of the sorting-based algorithm:
///   O( omega h log_{omega m} (N / max{delta, B}) + omega n ).
double spmv_sort_upper_bound(const SpmvParams& p);

/// The min of the two upper bounds (the paper's stated upper bound).
double spmv_upper_bound(const SpmvParams& p);

/// The exact round-counting lower bound from the Theorem 5.1 proof,
/// evaluated numerically (the displayed inequality before case analysis):
///   Q >= delta N log2(N/max{3 delta, 2eB} * B/(e omega M))
///        / (2 log2 H + (B/omega) log2(e omega M / B) + (B/(omega M)) log2 H)
/// Clamped at 0 when the numerator's log goes negative (bound degenerates).
double spmv_counting_cost_bound(const SpmvParams& p);

}  // namespace aem::bounds
