// The counting lower bound of Section 4.2, made executable.
//
// A round-based program (rounds of cost <= omega*m, memory empty between
// rounds) can multiply the number of reachable permutations by at most the
// bracketed factor of inequality (1) per round:
//
//   P(R) <= [ C(N, omega M / B) * C(omega M, M) * 2^M * M!/B!^{M/B}
//             * (3N)^{M/B} ]^R
//
// and correctness requires P(R) >= N! / B!^{N/B}.  This module computes, in
// log2 space, the per-round factor, the target, the implied minimal round
// count R, and the cost bound (R-1) * omega * (m-1) (every round but the
// last costs at least omega*(m-1)).  Corollary 4.2 transfers the bound to
// arbitrary programs at half the memory; counting_cost_bound_general applies
// that transfer.
#pragma once

#include <cstdint>

#include "bounds/permute_bounds.hpp"

namespace aem::bounds {

/// log2 of the per-round multiplicative factor in inequality (1).
double log2_perms_per_round(const AemParams& p);

/// log2 of the required permutation count N! / B!^{N/B}.
double log2_target_permutations(const AemParams& p);

/// Minimal number of rounds R with P(R) >= N!/B!^{N/B} under inequality (1).
std::uint64_t min_rounds_counting(const AemParams& p);

/// Cost lower bound for ROUND-BASED programs with memory M:
///   (R - 1) * omega * (m - 1).
double counting_cost_bound_round_based(const AemParams& p);

/// Cost lower bound for ARBITRARY programs with memory M, via Corollary 4.2:
/// the round-based bound evaluated at memory 2M (a round-based simulation
/// uses twice the memory, Lemma 4.1), divided by the simulation's constant
/// factor `lemma41_factor`.
double counting_cost_bound_general(const AemParams& p,
                                   double lemma41_factor = 3.0);

}  // namespace aem::bounds
