// Sorting cost bounds in the (M,B,omega)-AEM model (Sections 1 and 3).
#pragma once

#include <cstdint>

#include "bounds/permute_bounds.hpp"

namespace aem::bounds {

/// Section 3's AEM mergesort cost: O(omega * n * log_{omega m} n).
/// Returned with constant 1 and the log clamped at 1 (one pass minimum).
double aem_sort_upper_bound(const AemParams& p);

/// The separate read/write targets of Section 3:
/// reads = O(omega n log_{omega m} n), writes = O(n log_{omega m} n).
double aem_sort_read_bound(const AemParams& p);
double aem_sort_write_bound(const AemParams& p);

/// Theorem 3.2's merge of d = omega*m runs containing N elements total:
/// O(omega (n + m)) reads and O(n + m) writes.
double aem_merge_read_bound(const AemParams& p);
double aem_merge_write_bound(const AemParams& p);

/// Blelloch et al. [7, Lemma 4.2] base case: sorting N' <= omega*M elements
/// costs O(omega n') reads and O(n') writes.
double small_sort_read_bound(const AemParams& p);
double small_sort_write_bound(const AemParams& p);

/// The omega-oblivious EM mergesort (Aggarwal-Vitter) run on the AEM:
/// n log_m n reads AND n log_m n writes, so Q = (1 + omega) n log_m n.
double em_sort_cost_on_aem(const AemParams& p);

/// Sorting lower bound (same as permuting, Theorem 4.5, since sorting must
/// realize arbitrary permutations): min{N, omega n log_{omega m} n}.
double sort_lower_bound(const AemParams& p);

/// The predicted advantage of the omega-aware mergesort over the oblivious
/// one: ((1+omega)/omega) * log(omega m)/log(m), the factor by which
/// em_sort_cost_on_aem exceeds aem_sort_upper_bound.
double predicted_oblivious_penalty(const AemParams& p);

}  // namespace aem::bounds
