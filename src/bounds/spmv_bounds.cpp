#include "bounds/spmv_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/logmath.hpp"

namespace aem::bounds {

namespace {
constexpr double kE = 2.718281828459045;
}

double log2_tau(std::uint64_t N, std::uint64_t delta, std::uint64_t B) {
  const double dn = static_cast<double>(delta) * static_cast<double>(N);
  if (B < delta) return dn * std::log2(3.0);
  if (B == delta) return 0.0;
  const double ratio = 2.0 * kE * static_cast<double>(B) /
                       static_cast<double>(delta);
  return dn * std::log2(ratio);
}

double spmv_bound_naive_branch(const SpmvParams& p) {
  return static_cast<double>(p.H());
}

double spmv_bound_sort_branch(const SpmvParams& p) {
  const double h = static_cast<double>(p.h());
  const double base = static_cast<double>(p.omega) * static_cast<double>(p.m());
  const double arg = static_cast<double>(p.N) /
                     static_cast<double>(std::max(p.delta, p.B));
  return static_cast<double>(p.omega) * h * log_base(arg, base);
}

double spmv_lower_bound(const SpmvParams& p) {
  return std::min(spmv_bound_naive_branch(p), spmv_bound_sort_branch(p));
}

bool spmv_bound_applicable(const SpmvParams& p, double eps) {
  if (p.B <= 2 || p.M <= 4 * p.B) return false;
  const double lhs = static_cast<double>(p.omega) *
                     static_cast<double>(p.delta) * static_cast<double>(p.M) *
                     static_cast<double>(p.B);
  const double rhs = std::pow(static_cast<double>(p.N), 1.0 - eps);
  return lhs <= rhs;
}

double spmv_lower_bound_total(const SpmvParams& p) {
  const double output = static_cast<double>(p.omega) *
                        static_cast<double>(p.n());
  return std::max(spmv_lower_bound(p), output);
}

double spmv_naive_upper_bound(const SpmvParams& p) {
  return static_cast<double>(p.H()) +
         static_cast<double>(p.omega) * static_cast<double>(p.n());
}

double spmv_sort_upper_bound(const SpmvParams& p) {
  return spmv_bound_sort_branch(p) +
         static_cast<double>(p.omega) * static_cast<double>(p.n());
}

double spmv_upper_bound(const SpmvParams& p) {
  return std::min(spmv_naive_upper_bound(p), spmv_sort_upper_bound(p));
}

double spmv_counting_cost_bound(const SpmvParams& p) {
  const double N = static_cast<double>(p.N);
  const double B = static_cast<double>(p.B);
  const double M = static_cast<double>(p.M);
  const double w = static_cast<double>(p.omega);
  const double delta = static_cast<double>(p.delta);

  const double denom_inner = std::max(3.0 * delta, 2.0 * kE * B);
  const double arg = (N / denom_inner) * (B / (kE * w * M));
  if (arg <= 1.0) return 0.0;
  const double numerator = delta * N * std::log2(arg);

  const double lgH = log2u(p.H());
  const double denominator = 2.0 * lgH +
                             (B / w) * std::log2(kE * w * M / B) +
                             (B / (w * M)) * lgH;
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}

}  // namespace aem::bounds
