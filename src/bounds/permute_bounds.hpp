// Permutation bounds in the (M,B,omega)-AEM model (Section 4 and
// Corollary 4.4 of Jacob & Sitchinava, SPAA'17).
//
// All bounds are returned as real-valued cost estimates (in units of the
// AEM cost measure Q = Q_r + omega * Q_w) with their asymptotic constants
// set to 1 unless stated otherwise; benchmark tables report measured/bound
// ratios, which the theorems predict stay bounded as N grows.
#pragma once

#include <cstdint>

namespace aem::bounds {

struct AemParams {
  std::uint64_t N = 0;      // input size in elements
  std::uint64_t M = 0;      // internal memory in elements
  std::uint64_t B = 0;      // block size in elements
  std::uint64_t omega = 1;  // write/read cost ratio

  std::uint64_t n() const { return (N + B - 1) / B; }
  std::uint64_t m() const { return (M + B - 1) / B; }
};

/// Theorem 4.5: permuting N elements costs
///   Omega( min{ N, omega * n * log_{omega m} n } ),  assuming omega <= N/B.
/// Returns the bound with constant 1 and the log clamped at 1.
double permute_lower_bound(const AemParams& p);

/// The two branches of the min separately (useful for crossover tables).
double permute_bound_naive_branch(const AemParams& p);   // N
double permute_bound_sort_branch(const AemParams& p);    // omega n log_{omega m} n

/// Precondition of Theorem 4.5: omega <= N / B.
bool permute_bound_applicable(const AemParams& p);

/// Theorem 4.5's bound strengthened by the trivial output bound: any
/// permutation program must write its n output blocks, costing omega * n.
///   max( min{N, omega n log_{omega m} n},  omega * n ).
/// This is the bound measured costs are compared against in E4/E5 — without
/// the trivial term the theorem's bound is loose whenever omega > B.
double permute_lower_bound_total(const AemParams& p);

/// Upper bound of the naive per-output-block gather program:
///   <= N reads + omega * n writes.
double permute_naive_upper_bound(const AemParams& p);

/// Upper bound of the sort-based permutation (AEM mergesort on
/// (destination, value) records): c * omega * n * log_{omega m} n + O(omega n)
/// for the tagging/stripping scans.
double permute_sort_upper_bound(const AemParams& p);

/// Corollary 4.4 (lower bound via the flash-model reduction):
///   Q >= Omega(min{N, omega n log_{omega m} n}) - 2 omega n.
/// Weaker than Theorem 4.5 for some ranges; reported alongside it in E7.
double permute_lower_bound_via_flash(const AemParams& p);

/// Classical Aggarwal-Vitter permuting bound in a symmetric EM model with
/// block size `b` and memory `M`, in units of block I/Os:
///   min{ N, (N/b) log_{M/b} (N/b) }.
/// Used for the flash model with b = B/omega (unit-cost per element:
/// multiply by b to get volume).
double av_permute_bound_ios(std::uint64_t N, std::uint64_t M, std::uint64_t b);

}  // namespace aem::bounds
