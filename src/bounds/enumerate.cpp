#include "bounds/enumerate.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/math.hpp"

namespace aem::bounds {

namespace {

using Mask = std::uint8_t;   // atom subset (N <= 8)
using State = std::uint64_t; // L location masks packed, 8 bits each

struct Geometry {
  std::uint32_t N, M, B, omega, L;
  std::uint32_t n() const { return (N + B - 1) / B; }
  std::uint32_t m() const { return (M + B - 1) / B; }
  std::uint32_t budget() const { return omega * m(); }
};

Mask get_loc(State s, std::uint32_t loc) {
  return static_cast<Mask>((s >> (8 * loc)) & 0xFF);
}

State set_loc(State s, std::uint32_t loc, Mask m) {
  s &= ~(State{0xFF} << (8 * loc));
  s |= State{m} << (8 * loc);
  return s;
}

int popcount(Mask m) { return __builtin_popcount(m); }

/// All set-partitions of `atoms` into at most `max_groups` groups of at
/// most B atoms each, generated canonically (each atom joins an existing
/// group or opens a new one, in atom order).
void enumerate_partitions(Mask atoms, std::uint32_t max_groups,
                          std::uint32_t B, std::vector<Mask>& current,
                          std::vector<std::vector<Mask>>& out) {
  if (atoms == 0) {
    out.push_back(current);
    return;
  }
  const int atom = __builtin_ctz(atoms);
  const Mask rest = static_cast<Mask>(atoms & (atoms - 1));
  for (std::size_t g = 0; g < current.size(); ++g) {
    if (popcount(current[g]) >= static_cast<int>(B)) continue;
    current[g] |= Mask{1} << atom;
    enumerate_partitions(rest, max_groups, B, current, out);
    current[g] &= static_cast<Mask>(~(Mask{1} << atom));
  }
  if (current.size() < max_groups) {
    current.push_back(Mask{1} << atom);
    enumerate_partitions(rest, max_groups, B, current, out);
    current.pop_back();
  }
}

/// Ordered injections of `groups` into the empty locations: every way of
/// writing the new blocks.  Calls sink(state_with_writes).
template <class Sink>
void place_groups(State base, const std::vector<Mask>& groups,
                  std::size_t next, const std::vector<std::uint32_t>& empties,
                  std::uint32_t used_mask, const Sink& sink) {
  if (next == groups.size()) {
    sink(base);
    return;
  }
  for (std::size_t e = 0; e < empties.size(); ++e) {
    if (used_mask & (1u << e)) continue;
    place_groups(set_loc(base, empties[e], groups[next]), groups, next + 1,
                 empties, used_mask | (1u << e), sink);
  }
}

/// The set-wise permutation realized by a configuration, if any: the
/// occupied locations, taken in ADDRESS order, must partition the atoms in
/// the output shape (full blocks, partial last).  Address order — rather
/// than a free per-state choice of output designation — matches a program
/// committing to where its output lives; the paper's "blocks need not be
/// adjacent" relaxation is reflected in the locations being arbitrary, not
/// in their order being free (a free order would make B = 1 permuting
/// trivially zero-cost, which no model intends).
void collect_partitions(State s, const Geometry& g,
                        std::unordered_set<std::uint64_t>& out) {
  const std::uint32_t k = g.n();
  const std::uint32_t last = g.N - (k - 1) * g.B;
  std::vector<std::uint32_t> spots;
  for (std::uint32_t l = 0; l < g.L; ++l)
    if (get_loc(s, l) != 0) spots.push_back(l);
  if (spots.size() != k) return;  // must occupy exactly n blocks

  bool ok = true;
  std::uint64_t key = 0;
  for (std::uint32_t i = 0; i < k && ok; ++i) {
    const Mask m = get_loc(s, spots[i]);
    const int want =
        (i + 1 == k) ? static_cast<int>(last) : static_cast<int>(g.B);
    if (popcount(m) != want) ok = false;
    key |= std::uint64_t{m} << (8 * i);
  }
  if (ok) out.insert(key);
}

/// All states reachable from `s` in one round.
template <class Sink>
void expand(State s, const Geometry& g, const Sink& sink) {
  std::vector<std::uint32_t> nonempty;
  for (std::uint32_t l = 0; l < g.L; ++l)
    if (get_loc(s, l) != 0) nonempty.push_back(l);

  const std::uint32_t budget = g.budget();
  // Choose the set of blocks to read: all subsets of nonempty locations of
  // size r with r <= budget and room for at least one write.
  const std::uint32_t max_r =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(nonempty.size()),
                              budget >= g.omega ? budget - g.omega : 0);
  for (std::uint32_t subset = 1; subset < (1u << nonempty.size()); ++subset) {
    const std::uint32_t r = static_cast<std::uint32_t>(
        __builtin_popcount(subset));
    if (r > max_r) continue;
    const std::uint32_t w_max = (budget - r) / g.omega;
    if (w_max == 0) continue;

    Mask atoms = 0;
    State removed = s;
    for (std::size_t i = 0; i < nonempty.size(); ++i) {
      if (subset & (1u << i)) atoms |= get_loc(s, nonempty[i]);
    }

    // Choose which of the read atoms to move (<= M), remove them, and
    // write them back as up to w_max fresh blocks into empty locations.
    for (Mask keep = atoms; keep != 0;
         keep = static_cast<Mask>((keep - 1) & atoms)) {
      if (popcount(keep) > static_cast<int>(g.M)) continue;
      State base = removed;
      for (std::size_t i = 0; i < nonempty.size(); ++i) {
        if (subset & (1u << i)) {
          const Mask old = get_loc(s, nonempty[i]);
          base = set_loc(base, nonempty[i], static_cast<Mask>(old & ~keep));
        }
      }
      std::vector<std::uint32_t> empties;
      for (std::uint32_t l = 0; l < g.L; ++l)
        if (get_loc(base, l) == 0) empties.push_back(l);

      std::vector<Mask> current;
      std::vector<std::vector<Mask>> partitions;
      enumerate_partitions(keep, std::min<std::uint32_t>(
                                     w_max, static_cast<std::uint32_t>(
                                                empties.size())),
                           g.B, current, partitions);
      for (const auto& groups : partitions)
        place_groups(base, groups, 0, empties, 0, sink);
    }
  }
}

std::uint64_t factorial(std::uint64_t n) {
  std::uint64_t f = 1;
  for (std::uint64_t i = 2; i <= n; ++i) f *= i;
  return f;
}

}  // namespace

EnumResult enumerate_reachable_permutations(const EnumParams& p) {
  if (p.N == 0 || p.N > 8)
    throw std::invalid_argument("enumerate: N must be in [1, 8]");
  if (p.B == 0 || p.B > p.N || p.M < p.B)
    throw std::invalid_argument("enumerate: need 1 <= B <= N and M >= B");

  Geometry g;
  g.N = p.N;
  g.M = p.M;
  g.B = p.B;
  g.omega = p.omega == 0 ? 1 : p.omega;
  g.L = p.locations != 0 ? p.locations : g.n() + g.m() + 1;
  if (g.L > 8 || g.L < g.n())
    throw std::invalid_argument("enumerate: locations must be in [n, 8]");

  // Initial configuration: atoms 0..N-1 in blocks of B at locations 0..n-1.
  State init = 0;
  for (std::uint32_t i = 0; i < g.N; ++i) {
    const std::uint32_t loc = i / g.B;
    init = set_loc(init, loc,
                   static_cast<Mask>(get_loc(init, loc) | (Mask{1} << i)));
  }

  EnumResult result;
  const std::uint32_t full = g.N / g.B;
  const std::uint32_t rem = g.N % g.B;
  result.target = factorial(g.N);
  for (std::uint32_t i = 0; i < full; ++i) result.target /= factorial(g.B);
  result.target /= factorial(rem);

  std::unordered_set<State> visited{init};
  std::vector<State> frontier{init};
  std::unordered_set<std::uint64_t> perms;
  collect_partitions(init, g, perms);
  result.reachable.push_back(perms.size());
  if (perms.size() == result.target) result.rounds_to_complete = 0;

  for (std::uint32_t round = 1;
       round <= p.max_rounds && !result.rounds_to_complete; ++round) {
    std::vector<State> next;
    for (State s : frontier) {
      expand(s, g, [&](State t) {
        if (visited.insert(t).second) {
          next.push_back(t);
          collect_partitions(t, g, perms);
        }
      });
    }
    result.reachable.push_back(perms.size());
    if (perms.size() >= result.target) result.rounds_to_complete = round;
    if (next.empty()) break;  // fixpoint
    frontier = std::move(next);
  }
  result.states_explored = visited.size();
  return result;
}

}  // namespace aem::bounds
