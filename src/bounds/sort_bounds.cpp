#include "bounds/sort_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/logmath.hpp"

namespace aem::bounds {

namespace {

double levels_omega_m(const AemParams& p) {
  const double n = static_cast<double>(p.n());
  const double base = static_cast<double>(p.omega) * static_cast<double>(p.m());
  return log_base(n, base);
}

double levels_m(const AemParams& p) {
  const double n = static_cast<double>(p.n());
  return log_base(n, static_cast<double>(p.m()));
}

}  // namespace

double aem_sort_upper_bound(const AemParams& p) {
  return static_cast<double>(p.omega) * static_cast<double>(p.n()) *
         levels_omega_m(p);
}

double aem_sort_read_bound(const AemParams& p) { return aem_sort_upper_bound(p); }

double aem_sort_write_bound(const AemParams& p) {
  return static_cast<double>(p.n()) * levels_omega_m(p);
}

double aem_merge_read_bound(const AemParams& p) {
  return static_cast<double>(p.omega) *
         (static_cast<double>(p.n()) + static_cast<double>(p.m()));
}

double aem_merge_write_bound(const AemParams& p) {
  return static_cast<double>(p.n()) + static_cast<double>(p.m());
}

double small_sort_read_bound(const AemParams& p) {
  return static_cast<double>(p.omega) * static_cast<double>(p.n());
}

double small_sort_write_bound(const AemParams& p) {
  return static_cast<double>(p.n());
}

double em_sort_cost_on_aem(const AemParams& p) {
  const double passes = levels_m(p);
  const double n = static_cast<double>(p.n());
  return (1.0 + static_cast<double>(p.omega)) * n * passes;
}

double sort_lower_bound(const AemParams& p) { return permute_lower_bound(p); }

double predicted_oblivious_penalty(const AemParams& p) {
  const double w = static_cast<double>(p.omega);
  return ((1.0 + w) / w) * (levels_m(p) / levels_omega_m(p));
}

}  // namespace aem::bounds
