// The direct ("naive") SpMxV program of Section 5: for each output y_i in
// natural order, gather the row-i entries of the column-major matrix and
// fold a_ij (x) x_j into y_i.
//
// Cost: every entry gather costs at most one read of A plus one read of x
// (shared when consecutive gathers hit the same block), and y is written
// once: O(H + omega * n) — the branch of the Section 5 upper bound that
// wins when writes are expensive enough that even one sorting pass over the
// elementary products costs more than element-granular gathering.
//
// The per-row entry index is host-side program construction (Section 2):
// the conformation is the problem statement, so planning from it is free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/cursor.hpp"
#include "io/writer.hpp"
#include "spmv/matrix.hpp"
#include "spmv/semiring.hpp"

namespace aem::spmv {

namespace detail {

/// Shared gather loop: with_x = false computes y = A (x) 1 (the all-ones
/// vector of the Theorem 5.1 hard instance) without touching x at all —
/// the program knows the vector is implicit, so charging reads for it
/// would be fiction.
template <Semiring S>
void naive_gather(const SparseMatrix<typename S::Value>& A,
                  const ExtArray<typename S::Value>* x,
                  ExtArray<typename S::Value>& y, S s) {
  using V = typename S::Value;
  const std::uint64_t N = A.n();
  if ((x != nullptr && x->size() != N) || y.size() != N)
    throw std::invalid_argument("naive_spmv: vector size mismatch");

  // Host-side plan: entry indices grouped by row, each row's entries in
  // storage position order (clustered A reads stay clustered).
  std::vector<std::vector<std::size_t>> row_plan(N);
  {
    const auto& coords = A.conformation().coords();
    for (std::size_t e = 0; e < coords.size(); ++e)
      row_plan[coords[e].row].push_back(e);
  }

  BlockCursor<MatrixEntry<V>> a_cursor(A.entries());
  std::optional<BlockCursor<V>> x_cursor;
  if (x != nullptr) x_cursor.emplace(*x);
  Writer<V> out(y);
  for (std::uint64_t i = 0; i < N; ++i) {
    V acc = s.zero();
    for (std::size_t e : row_plan[i]) {
      const MatrixEntry<V>& entry = a_cursor.at(e);
      const V xv = x_cursor ? x_cursor->at(entry.col) : s.one();
      acc = s.add(acc, s.mul(entry.val, xv));
    }
    out.push(acc);
  }
  out.finish();
}

}  // namespace detail

/// y = A (x) x over semiring `s`.  y must have size A.n().
template <Semiring S>
void naive_spmv(const SparseMatrix<typename S::Value>& A,
                const ExtArray<typename S::Value>& x,
                ExtArray<typename S::Value>& y, S s = {}) {
  detail::naive_gather(A, &x, y, s);
}

/// y = A (x) 1 — the paper's hard instance (row sums).  No x reads: the
/// all-ones vector is part of the problem statement.
template <Semiring S>
void naive_row_sums(const SparseMatrix<typename S::Value>& A,
                    ExtArray<typename S::Value>& y, S s = {}) {
  detail::naive_gather<S>(A, nullptr, y, s);
}

}  // namespace aem::spmv
