// SpMxV dispatcher: the executable min{., .} of the Section 5 upper bound
//   O( min{ H, omega h log_{omega m}(N/max{delta,B}) } + omega n ).
#pragma once

#include "bounds/spmv_bounds.hpp"
#include "core/ext_array.hpp"
#include "spmv/naive.hpp"
#include "spmv/sort_spmv.hpp"

namespace aem::spmv {

enum class SpmvStrategy { kNaive, kSortBased };

inline const char* to_string(SpmvStrategy s) {
  return s == SpmvStrategy::kNaive ? "naive" : "sort-based";
}

/// Implementation constant relating the sorting-based program's true cost
/// to the closed form (run-formation passes, double-block initialization,
/// densify scan).  Calibrated by E9.
inline constexpr double kSpmvSortCostFactor = 6.0;

inline bounds::SpmvParams spmv_params(const Machine& mach, std::uint64_t N,
                                      std::uint64_t delta) {
  return bounds::SpmvParams{.N = N, .delta = delta, .M = mach.M(),
                            .B = mach.B(), .omega = mach.omega()};
}

inline double predicted_spmv_naive_cost(const Machine& mach, std::uint64_t N,
                                        std::uint64_t delta) {
  // The gather may read A and x separately per entry: ~2H + omega n.
  const auto p = spmv_params(mach, N, delta);
  return static_cast<double>(p.H()) + bounds::spmv_naive_upper_bound(p);
}

inline double predicted_spmv_sort_cost(const Machine& mach, std::uint64_t N,
                                       std::uint64_t delta) {
  return kSpmvSortCostFactor *
         bounds::spmv_sort_upper_bound(spmv_params(mach, N, delta));
}

inline SpmvStrategy choose_spmv_strategy(const Machine& mach, std::uint64_t N,
                                         std::uint64_t delta) {
  return predicted_spmv_naive_cost(mach, N, delta) <=
                 predicted_spmv_sort_cost(mach, N, delta)
             ? SpmvStrategy::kNaive
             : SpmvStrategy::kSortBased;
}

/// y = A (x) x using whichever program the cost model predicts is cheaper.
/// Returns the strategy used.
template <Semiring S>
SpmvStrategy multiply(const SparseMatrix<typename S::Value>& A,
                  const ExtArray<typename S::Value>& x,
                  ExtArray<typename S::Value>& y, S s = {}) {
  const SpmvStrategy strat = choose_spmv_strategy(
      x.machine(), A.n(), A.conformation().delta());
  if (strat == SpmvStrategy::kNaive) {
    naive_spmv(A, x, y, s);
  } else {
    sort_spmv(A, x, y, s);
  }
  return strat;
}

}  // namespace aem::spmv
