// Semiring abstraction for SpMxV (Section 5).
//
// Theorem 5.1 is proved for programs over an arbitrary semiring — no
// inverses, no cancellation (which rules out Strassen-style tricks).  All
// SpMxV code in aemlib is templated over a Semiring so that the algorithms
// can only use add/mul/zero/one, making the restriction structural rather
// than a comment.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace aem::spmv {

template <class S>
concept Semiring = requires(const S s, typename S::Value a,
                            typename S::Value b) {
  typename S::Value;
  { s.zero() } -> std::convertible_to<typename S::Value>;
  { s.one() } -> std::convertible_to<typename S::Value>;
  { s.add(a, b) } -> std::convertible_to<typename S::Value>;
  { s.mul(a, b) } -> std::convertible_to<typename S::Value>;
};

/// The ordinary (+, *) semiring over doubles — numerical SpMxV.
struct PlusTimes {
  using Value = double;
  Value zero() const { return 0.0; }
  Value one() const { return 1.0; }
  Value add(Value a, Value b) const { return a + b; }
  Value mul(Value a, Value b) const { return a * b; }
};

/// The tropical (min, +) semiring — one SpMxV step is one round of
/// single-source shortest-path relaxation.
struct MinPlus {
  using Value = double;
  Value zero() const { return std::numeric_limits<double>::infinity(); }
  Value one() const { return 0.0; }
  Value add(Value a, Value b) const { return a < b ? a : b; }
  Value mul(Value a, Value b) const { return a + b; }
};

/// The boolean (or, and) semiring — one SpMxV step is one step of
/// reachability frontier expansion.
struct BoolOr {
  using Value = std::uint8_t;
  Value zero() const { return 0; }
  Value one() const { return 1; }
  Value add(Value a, Value b) const { return a | b; }
  Value mul(Value a, Value b) const { return a & b; }
};

/// The counting semiring over uint64 — with the all-ones vector this
/// computes row degrees, the exact computation the Theorem 5.1 hard
/// instance performs.
struct Counting {
  using Value = std::uint64_t;
  Value zero() const { return 0; }
  Value one() const { return 1; }
  Value add(Value a, Value b) const { return a + b; }
  Value mul(Value a, Value b) const { return a * b; }
};

static_assert(Semiring<PlusTimes>);
static_assert(Semiring<MinPlus>);
static_assert(Semiring<BoolOr>);
static_assert(Semiring<Counting>);

}  // namespace aem::spmv
