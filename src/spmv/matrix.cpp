#include "spmv/matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"

namespace aem::spmv {

Conformation::Conformation(std::uint64_t n, std::vector<Coord> coords,
                           Layout layout)
    : n_(n), coords_(std::move(coords)), layout_(layout) {
  validate();
}

void Conformation::validate() const {
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const Coord& c = coords_[i];
    if (c.row >= n_ || c.col >= n_)
      throw std::invalid_argument("Conformation: coordinate out of range");
    if (i > 0) {
      const Coord& p = coords_[i - 1];
      const bool ordered =
          layout_ == Layout::kColumnMajor
              ? (p.col < c.col || (p.col == c.col && p.row < c.row))
              : (p.row < c.row || (p.row == c.row && p.col < c.col));
      if (!ordered)
        throw std::invalid_argument(
            "Conformation: entries must be strictly sorted in the declared "
            "layout order");
    }
  }
}

Conformation Conformation::reordered(Layout layout) const {
  std::vector<Coord> coords = coords_;
  if (layout == Layout::kColumnMajor) {
    std::sort(coords.begin(), coords.end(), [](const Coord& a, const Coord& b) {
      return a.col != b.col ? a.col < b.col : a.row < b.row;
    });
  } else {
    std::sort(coords.begin(), coords.end(), [](const Coord& a, const Coord& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
  }
  return Conformation(n_, std::move(coords), layout);
}

std::uint64_t Conformation::delta() const {
  if (n_ == 0) return 0;
  return util::ceil_div(coords_.size(), n_);
}

Conformation Conformation::delta_regular(std::uint64_t n, std::uint64_t delta,
                                         util::Rng& rng) {
  if (delta > n)
    throw std::invalid_argument("delta_regular: delta > n");
  std::vector<Coord> coords;
  coords.reserve(n * delta);
  std::vector<std::uint32_t> rows(delta);
  for (std::uint64_t c = 0; c < n; ++c) {
    // Floyd's algorithm: delta distinct rows out of n, uniform.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(delta);
    for (std::uint64_t j = n - delta; j < n; ++j) {
      std::uint32_t t = static_cast<std::uint32_t>(rng.below(j + 1));
      if (std::find(chosen.begin(), chosen.end(), t) != chosen.end())
        t = static_cast<std::uint32_t>(j);
      chosen.push_back(t);
    }
    std::sort(chosen.begin(), chosen.end());
    for (std::uint32_t r : chosen)
      coords.push_back(Coord{r, static_cast<std::uint32_t>(c)});
  }
  return Conformation(n, std::move(coords));
}

Conformation Conformation::banded(std::uint64_t n,
                                  std::uint64_t half_bandwidth) {
  std::vector<Coord> coords;
  for (std::uint64_t c = 0; c < n; ++c) {
    const std::uint64_t lo = c > half_bandwidth ? c - half_bandwidth : 0;
    const std::uint64_t hi = std::min(n - 1, c + half_bandwidth);
    for (std::uint64_t r = lo; r <= hi; ++r)
      coords.push_back(Coord{static_cast<std::uint32_t>(r),
                             static_cast<std::uint32_t>(c)});
  }
  return Conformation(n, std::move(coords));
}

Conformation Conformation::block_diagonal(std::uint64_t n,
                                          std::uint64_t block) {
  if (block == 0) throw std::invalid_argument("block_diagonal: block == 0");
  std::vector<Coord> coords;
  for (std::uint64_t c = 0; c < n; ++c) {
    const std::uint64_t base = (c / block) * block;
    const std::uint64_t hi = std::min(n, base + block);
    for (std::uint64_t r = base; r < hi; ++r)
      coords.push_back(Coord{static_cast<std::uint32_t>(r),
                             static_cast<std::uint32_t>(c)});
  }
  return Conformation(n, std::move(coords));
}

}  // namespace aem::spmv
