// The sorting-based SpMxV program of Section 5.
//
// 1. Products: one simultaneous scan of A (column-major) and x — the column
//    indices of A's entries are non-decreasing, so x is scanned forward
//    with skips — replacing each a_ij with the elementary product
//    a_ij (x) x_j tagged by its row:  h + n reads, h writes.
// 2. Run formation: small_sort-with-combine over chunks of base =
//    omega*M/2 products, sorting each chunk by row and folding key-equal
//    partial sums:  O(omega h) reads, O(h) writes.  (The paper forms runs
//    from the delta-sorted columns / meta-columns; chunking by base can
//    only produce FEWER runs whenever delta*max(delta,B) <= omega*M, which
//    holds throughout the Theorem 5.1 regime omega*delta*M*B <= N^(1-eps).)
// 3. Merge: d-way merge_all_runs with the semiring combiner — the
//    log_{omega m} factor of the bound.
// 4. Densify: scan the merged (row, value) list and emit y in natural
//    order, filling semiring zeros for empty rows:  <= h reads, n writes.
//
// Total: O(omega h log_{omega m}(N / max{delta, B}) + omega n), matching
// the sort branch of the Section 5 upper bound.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/mergesort.hpp"
#include "sort/small_sort.hpp"
#include "spmv/matrix.hpp"
#include "spmv/semiring.hpp"

namespace aem::spmv {

namespace detail {

template <class V>
struct RowVal {
  std::uint32_t row = 0;
  V val{};
};

/// Shared implementation; x == nullptr computes y = A (x) 1 (row sums, the
/// Theorem 5.1 hard instance) and skips the x-scan of phase 1 entirely.
template <Semiring S>
void sort_multiply(const SparseMatrix<typename S::Value>& A,
                   const ExtArray<typename S::Value>* x,
                   ExtArray<typename S::Value>& y, S s) {
  using V = typename S::Value;
  using RV = detail::RowVal<V>;
  const std::uint64_t N = A.n();
  const std::uint64_t H = A.nnz();
  if ((x != nullptr && x->size() != N) || y.size() != N)
    throw std::invalid_argument("sort_spmv: vector size mismatch");
  if (A.conformation().layout() != Layout::kColumnMajor)
    throw std::invalid_argument(
        "sort_spmv: requires column-major layout (phase 1's simultaneous "
        "scan of A and x needs non-decreasing column indices); for "
        "row-major matrices the direct program is already scan-cheap");

  Machine& mach = y.machine();
  const SortBudget budget = SortBudget::from(mach);
  auto by_row = [](const RV& a, const RV& b) { return a.row < b.row; };
  auto fold = [s](RV& acc, const RV& next) {
    acc.val = s.add(acc.val, next.val);
  };

  ExtArray<RV> products(mach, H, "spmv.products");
  {
    // Phase 1: elementary products via simultaneous forward scans (the
    // column indices of A's entries are non-decreasing, so x is scanned
    // forward with skips).  With the implicit all-ones vector the x scan
    // disappears and the products are the entries themselves.
    auto phase = mach.phase("spmv.products");
    Scanner<MatrixEntry<V>> a_scan(A.entries());
    std::optional<Scanner<V>> x_scan;
    if (x != nullptr) x_scan.emplace(*x);
    std::size_t x_pos = 0;
    V x_val = s.one();
    bool x_loaded = false;
    Writer<RV> w(products);
    while (!a_scan.done()) {
      const MatrixEntry<V> e = a_scan.next();
      if (x_scan && (!x_loaded || e.col > x_pos)) {
        if (x_loaded && e.col > x_pos) x_scan->skip(e.col - x_pos - 1);
        while (x_scan->position() <= e.col) {
          x_pos = x_scan->position();
          x_val = x_scan->next();
        }
        x_loaded = true;
      }
      w.push(RV{e.row, s.mul(e.val, x_val)});
    }
    w.finish();
  }

  // Phase 2: row-sorted, row-combined runs of up to `base` products.
  ExtArray<RV> run_buf_a(mach, H, "spmv.runs.a");
  ExtArray<RV> run_buf_b(mach, H, "spmv.runs.b");
  std::vector<RunBounds> runs;
  {
    auto phase = mach.phase("spmv.runs");
    for (std::size_t begin = 0; begin < H; begin += budget.base) {
      const std::size_t end = std::min<std::size_t>(H, begin + budget.base);
      const std::size_t written =
          small_sort(products, begin, end, run_buf_a, begin, by_row, fold);
      runs.push_back(RunBounds{begin, begin + written});
    }
  }

  // Phase 3: d-way merge with semiring combining.
  const ExtArray<RV>* merged = &run_buf_a;
  RunBounds final_bounds = runs.empty() ? RunBounds{0, 0} : runs.front();
  {
    auto phase = mach.phase("spmv.merge");
    auto [arr, bounds] = merge_all_runs(&run_buf_a, runs, &run_buf_b,
                                        &run_buf_a, by_row, fold);
    merged = arr;
    final_bounds = bounds;
  }

  {
    // Phase 4: densify into y.
    auto phase = mach.phase("spmv.densify");
    Scanner<RV> scan(*merged, final_bounds.begin, final_bounds.end);
    Writer<V> w(y);
    for (std::uint64_t r = 0; r < N; ++r) {
      if (!scan.done() && scan.peek().row == r) {
        w.push(scan.next().val);
      } else {
        w.push(s.zero());
      }
    }
    w.finish();
  }
}

}  // namespace detail

/// y = A (x) x over semiring `s`, by sorting elementary products by row.
template <Semiring S>
void sort_spmv(const SparseMatrix<typename S::Value>& A,
               const ExtArray<typename S::Value>& x,
               ExtArray<typename S::Value>& y, S s = {}) {
  detail::sort_multiply(A, &x, y, s);
}

/// y = A (x) 1 — the paper's hard instance (row sums), no x reads.
template <Semiring S>
void sort_row_sums(const SparseMatrix<typename S::Value>& A,
                   ExtArray<typename S::Value>& y, S s = {}) {
  detail::sort_multiply<S>(A, nullptr, y, s);
}

}  // namespace aem::spmv
