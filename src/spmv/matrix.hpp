// Sparse matrices in column-major layout (Section 5).
//
// A Conformation is the host-side structure of the matrix: the (row, col)
// coordinates of the non-zero entries in column-major order.  In the
// paper's program model the conformation is part of the problem statement —
// a program is written for one fixed conformation — so the planners consult
// it freely.  The VALUES are semiring atoms living in external memory
// (SparseMatrix::entries()), and only their transfers are charged.
//
// Theorem 5.1's hard instances have exactly delta non-zeros per column;
// delta_regular generates those.  banded and block_diagonal provide
// structured conformations for the examples and ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "io/writer.hpp"
#include "util/rng.hpp"

namespace aem::spmv {

struct Coord {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Storage order of the non-zero entries.  The paper's Section 5 lower
/// bound is for COLUMN-major layout — the adversarial choice, since the
/// output is produced row by row.  Row-major is provided as the ablation:
/// with it the direct program becomes a near-scan and the sorting-based
/// program is pointless (bench_a1_layout measures the gap).
enum class Layout { kColumnMajor, kRowMajor };

inline const char* to_string(Layout l) {
  return l == Layout::kColumnMajor ? "column-major" : "row-major";
}

class Conformation {
 public:
  Conformation(std::uint64_t n, std::vector<Coord> coords,
               Layout layout = Layout::kColumnMajor);

  std::uint64_t n() const { return n_; }
  std::uint64_t nnz() const { return coords_.size(); }
  const std::vector<Coord>& coords() const { return coords_; }
  Layout layout() const { return layout_; }

  /// The same non-zero structure stored in the other order.
  Conformation reordered(Layout layout) const;

  /// Average non-zeros per column, rounded up (the paper's delta for
  /// delta-regular instances; a density summary otherwise).
  std::uint64_t delta() const;

  /// Exactly `delta` non-zeros per column, rows uniform without repetition
  /// within a column.  Requires delta <= n.
  static Conformation delta_regular(std::uint64_t n, std::uint64_t delta,
                                    util::Rng& rng);
  /// Band matrix: entry (r, c) present iff |r - c| <= half_bandwidth,
  /// giving ~(2*half_bandwidth + 1) entries per column.
  static Conformation banded(std::uint64_t n, std::uint64_t half_bandwidth);
  /// Disjoint dense blocks of size `block` along the diagonal.
  static Conformation block_diagonal(std::uint64_t n, std::uint64_t block);

 private:
  void validate() const;  // layout-sorted, coordinates in range

  std::uint64_t n_;
  std::vector<Coord> coords_;
  Layout layout_ = Layout::kColumnMajor;
};

template <class V>
struct MatrixEntry {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  V val{};
};

/// A conformation plus externally stored entry values.
template <class V>
class SparseMatrix {
 public:
  /// Stages the entries into external memory uncharged (the input's
  /// presence in external memory is the problem statement).  `value_of`
  /// supplies each entry's value; defaults handled by callers (usually the
  /// semiring's one()).
  SparseMatrix(Machine& mach, Conformation conf,
               const std::function<V(Coord)>& value_of, std::string name = "A")
      : conf_(std::move(conf)),
        entries_(mach, conf_.nnz(), std::move(name)) {
    std::vector<MatrixEntry<V>> host;
    host.reserve(conf_.nnz());
    for (const Coord& c : conf_.coords())
      host.push_back(MatrixEntry<V>{c.row, c.col, value_of(c)});
    entries_.unsafe_host_fill(host);
  }

  const Conformation& conformation() const { return conf_; }
  const ExtArray<MatrixEntry<V>>& entries() const { return entries_; }
  std::uint64_t n() const { return conf_.n(); }
  std::uint64_t nnz() const { return conf_.nnz(); }

 private:
  Conformation conf_;
  ExtArray<MatrixEntry<V>> entries_;
};

}  // namespace aem::spmv
